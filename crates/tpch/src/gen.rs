//! A seeded, scaled-down TPC-H-like data generator over pvc-tables.
//!
//! The paper evaluates on tuple-independent TPC-H databases of up to 1 GB produced by
//! the official `dbgen`. That tool (and gigabyte-scale data) is substituted here by a
//! from-scratch generator that preserves the properties Experiment F depends on:
//!
//! * the eight-table star/snowflake schema with the same key relationships
//!   (region ← nation ← supplier/customer, part & supplier ← partsupp,
//!   customer ← orders ← lineitem);
//! * table cardinalities that scale linearly with the scale factor while the join
//!   fan-out *per group* stays constant (so annotation sizes per result tuple stay
//!   constant as the database grows — the property behind the polynomial overhead in
//!   Figure 11);
//! * uniformly distributed attribute values (return flags, ship dates, supply costs).
//!
//! The base cardinalities are 1/1000 of TPC-H's (scale factor 1.0 here ≈ 1 MB of
//! data), which keeps the benchmark harness runnable on a laptop; the sweep over scale
//! factors reproduces the *shape* of the paper's Figure 11, not its absolute numbers.

use pvc_db::{Database, Schema};
use pvc_prob::SeededRng;

/// Configuration of the TPC-H-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchConfig {
    /// Scale factor; 1.0 yields roughly one thousandth of the TPC-H SF-1 row counts.
    pub scale_factor: f64,
    /// RNG seed (the same seed and scale factor always produce the same database).
    pub seed: u64,
    /// Probability assigned to every generated tuple (tuple-independent tables).
    pub tuple_probability: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.1,
            seed: 20120827, // VLDB 2012 started on 27 August 2012.
            tuple_probability: 0.5,
        }
    }
}

/// Row counts derived from the scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// Number of regions (fixed at 5, as in TPC-H).
    pub regions: usize,
    /// Number of nations (fixed at 25, as in TPC-H).
    pub nations: usize,
    /// Number of suppliers.
    pub suppliers: usize,
    /// Number of parts.
    pub parts: usize,
    /// Number of part–supplier offers.
    pub partsupps: usize,
    /// Number of customers.
    pub customers: usize,
    /// Number of orders.
    pub orders: usize,
    /// Number of lineitems.
    pub lineitems: usize,
}

impl Cardinalities {
    /// Derive cardinalities from a scale factor (1/1000 of the TPC-H base counts).
    pub fn for_scale(scale_factor: f64) -> Self {
        let scaled = |base: f64| ((base * scale_factor).round() as usize).max(1);
        Cardinalities {
            regions: 5,
            nations: 25,
            suppliers: scaled(10.0),
            parts: scaled(200.0),
            partsupps: scaled(800.0),
            customers: scaled(150.0),
            orders: scaled(1500.0),
            lineitems: scaled(6000.0),
        }
    }

    /// Total number of generated tuples.
    pub fn total(&self) -> usize {
        self.regions
            + self.nations
            + self.suppliers
            + self.parts
            + self.partsupps
            + self.customers
            + self.orders
            + self.lineitems
    }
}

const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUS: [&str; 2] = ["O", "F"];

/// Generate a tuple-independent TPC-H-like pvc-database.
pub fn generate(config: &TpchConfig) -> Database {
    let cards = Cardinalities::for_scale(config.scale_factor);
    let mut rng = SeededRng::seed_from_u64(config.seed);
    let mut db = Database::new();
    let p = config.tuple_probability;

    // region(r_regionkey, r_name)
    db.create_table("region", Schema::new(["r_regionkey", "r_name"]));
    {
        let (t, vars) = db
            .table_and_vars_mut("region")
            .expect("table was just created");
        for (k, name) in REGION_NAMES.iter().enumerate().take(cards.regions) {
            t.push_independent(vec![(k as i64).into(), (*name).into()], p, vars);
        }
    }

    // nation(n_nationkey, n_regionkey, n_name)
    db.create_table(
        "nation",
        Schema::new(["n_nationkey", "n_regionkey", "n_name"]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("nation")
            .expect("table was just created");
        for k in 0..cards.nations {
            let region = (k % cards.regions) as i64;
            t.push_independent(
                vec![
                    (k as i64).into(),
                    region.into(),
                    format!("NATION{k}").into(),
                ],
                p,
                vars,
            );
        }
    }

    // supplier(s_suppkey, s_nationkey, s_acctbal)
    db.create_table(
        "supplier",
        Schema::new(["s_suppkey", "s_nationkey", "s_acctbal"]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("supplier")
            .expect("table was just created");
        for k in 0..cards.suppliers {
            let nation = rng.gen_range(0..cards.nations) as i64;
            let acctbal = rng.gen_range(0i64..10_000);
            t.push_independent(
                vec![(k as i64).into(), nation.into(), acctbal.into()],
                p,
                vars,
            );
        }
    }

    // part(p_partkey, p_size, p_retailprice)
    db.create_table(
        "part",
        Schema::new(["p_partkey", "p_size", "p_retailprice"]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("part")
            .expect("table was just created");
        for k in 0..cards.parts {
            let size = rng.gen_range(1i64..=50);
            let price = rng.gen_range(900i64..2_000);
            t.push_independent(vec![(k as i64).into(), size.into(), price.into()], p, vars);
        }
    }

    // partsupp(ps_partkey, ps_suppkey, ps_supplycost, ps_availqty)
    db.create_table(
        "partsupp",
        Schema::new(["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("partsupp")
            .expect("table was just created");
        for k in 0..cards.partsupps {
            // Every part gets offers from a bounded number of suppliers, mirroring
            // TPC-H's 4 offers per part: fan-out stays constant as the data scales.
            let part = (k % cards.parts) as i64;
            let supp = rng.gen_range(0..cards.suppliers) as i64;
            let cost = rng.gen_range(1i64..1_000);
            let qty = rng.gen_range(1i64..10_000);
            t.push_independent(
                vec![part.into(), supp.into(), cost.into(), qty.into()],
                p,
                vars,
            );
        }
    }

    // customer(c_custkey, c_nationkey)
    db.create_table("customer", Schema::new(["c_custkey", "c_nationkey"]));
    {
        let (t, vars) = db
            .table_and_vars_mut("customer")
            .expect("table was just created");
        for k in 0..cards.customers {
            let nation = rng.gen_range(0..cards.nations) as i64;
            t.push_independent(vec![(k as i64).into(), nation.into()], p, vars);
        }
    }

    // orders(o_orderkey, o_custkey, o_orderdate)
    db.create_table(
        "orders",
        Schema::new(["o_orderkey", "o_custkey", "o_orderdate"]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("orders")
            .expect("table was just created");
        for k in 0..cards.orders {
            let cust = rng.gen_range(0..cards.customers) as i64;
            let date = rng.gen_range(0i64..2_557); // days within the 7-year window
            t.push_independent(vec![(k as i64).into(), cust.into(), date.into()], p, vars);
        }
    }

    // lineitem(l_orderkey, l_partkey, l_quantity, l_extendedprice, l_shipdate,
    //          l_returnflag, l_linestatus)
    db.create_table(
        "lineitem",
        Schema::new([
            "l_orderkey",
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_shipdate",
            "l_returnflag",
            "l_linestatus",
        ]),
    );
    {
        let (t, vars) = db
            .table_and_vars_mut("lineitem")
            .expect("table was just created");
        for k in 0..cards.lineitems {
            let order = (k % cards.orders) as i64; // ~4 lineitems per order
            let part = rng.gen_range(0..cards.parts) as i64;
            let quantity = rng.gen_range(1i64..=50);
            let price = rng.gen_range(900i64..100_000);
            let shipdate = rng.gen_range(0i64..2_557);
            let flag = RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())];
            let status = LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())];
            t.push_independent(
                vec![
                    order.into(),
                    part.into(),
                    quantity.into(),
                    price.into(),
                    shipdate.into(),
                    flag.into(),
                    status.into(),
                ],
                p,
                vars,
            );
        }
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale_linearly() {
        let small = Cardinalities::for_scale(0.1);
        let large = Cardinalities::for_scale(1.0);
        assert_eq!(small.regions, 5);
        assert_eq!(large.nations, 25);
        assert_eq!(large.lineitems, 6000);
        assert_eq!(small.lineitems, 600);
        assert!(large.total() > small.total());
        // Minimum of one row per table even at tiny scale factors.
        let tiny = Cardinalities::for_scale(0.001);
        assert!(tiny.suppliers >= 1);
    }

    #[test]
    fn generation_is_deterministic_and_tuple_independent() {
        let config = TpchConfig {
            scale_factor: 0.01,
            ..TpchConfig::default()
        };
        let db1 = generate(&config);
        let db2 = generate(&config);
        assert_eq!(db1.total_tuples(), db2.total_tuples());
        assert!(db1.is_tuple_independent());
        assert_eq!(db1.vars.len(), db1.total_tuples());
        // Same seed ⇒ same data.
        let l1 = db1.table_or_err("lineitem").unwrap();
        let l2 = db2.table_or_err("lineitem").unwrap();
        assert_eq!(l1.tuples[0].values, l2.tuples[0].values);
    }

    #[test]
    fn schema_and_referential_structure() {
        let db = generate(&TpchConfig {
            scale_factor: 0.02,
            ..TpchConfig::default()
        });
        let cards = Cardinalities::for_scale(0.02);
        assert_eq!(db.table_or_err("lineitem").unwrap().len(), cards.lineitems);
        assert_eq!(db.table_or_err("orders").unwrap().len(), cards.orders);
        // Every lineitem references an existing order and part.
        let lineitem = db.table_or_err("lineitem").unwrap();
        for t in lineitem.iter() {
            let order = t.values[0].as_int().unwrap();
            let part = t.values[1].as_int().unwrap();
            assert!((order as usize) < cards.orders);
            assert!((part as usize) < cards.parts);
        }
        // Every nation references an existing region.
        let nation = db.table_or_err("nation").unwrap();
        for t in nation.iter() {
            assert!((t.values[1].as_int().unwrap() as usize) < cards.regions);
        }
    }

    #[test]
    fn tuple_probability_is_applied() {
        let db = generate(&TpchConfig {
            scale_factor: 0.01,
            tuple_probability: 0.25,
            ..TpchConfig::default()
        });
        let region = db.table_or_err("region").unwrap();
        let first_var = match &region.tuples[0].annotation {
            pvc_expr::SemiringExpr::Var(v) => *v,
            other => panic!("unexpected annotation {other:?}"),
        };
        assert!((db.vars.prob_true(first_var) - 0.25).abs() < 1e-12);
    }
}
