//! The two TPC-H queries evaluated in the paper's §7.2, expressed in the query
//! language `Q`.
//!
//! * **Q1** "reports the amount of business that was billed, shipped and returned
//!   (only the COUNT aggregate is selected)": a selection on the ship date followed by
//!   grouping on return flag and line status with a COUNT aggregate.
//! * **Q2** "is a join of five relations with a nested aggregate query, which asks for
//!   suppliers with minimum cost for an order for a given part in a given region":
//!   part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region, restricted to one region and one
//!   part size, where the supply cost equals the minimum supply cost among the
//!   qualifying offers (the nested `$_{∅; γ←MIN(ps_supplycost)}` sub-query).

use pvc_algebra::{AggOp, CmpOp};
use pvc_db::{AggSpec, Predicate, Query, Value};

/// TPC-H Q1 (COUNT variant): group the line items shipped up to `ship_date_cutoff`
/// by return flag and line status and count them.
pub fn q1(ship_date_cutoff: i64) -> Query {
    Query::table("lineitem")
        .select(Predicate::ColCmpConst(
            "l_shipdate".into(),
            CmpOp::Le,
            Value::Int(ship_date_cutoff),
        ))
        .group_agg(
            ["l_returnflag", "l_linestatus"],
            vec![AggSpec::count("order_count")],
        )
}

/// The flat five-way join of Q2: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region,
/// restricted to a region and a maximum part size.
fn q2_join(region: &str, max_part_size: i64, rename_suffix: &str) -> Query {
    // When the join is used twice in the same query (outer block and nested
    // aggregate), the second occurrence renames its columns to keep names unique.
    let rn = |name: &str| format!("{name}{rename_suffix}");
    let part = Query::table("part").rename(&[
        ("p_partkey", &rn("p_partkey")),
        ("p_size", &rn("p_size")),
        ("p_retailprice", &rn("p_retailprice")),
    ]);
    let partsupp = Query::table("partsupp").rename(&[
        ("ps_partkey", &rn("ps_partkey")),
        ("ps_suppkey", &rn("ps_suppkey")),
        ("ps_supplycost", &rn("ps_supplycost")),
        ("ps_availqty", &rn("ps_availqty")),
    ]);
    let supplier = Query::table("supplier").rename(&[
        ("s_suppkey", &rn("s_suppkey")),
        ("s_nationkey", &rn("s_nationkey")),
        ("s_acctbal", &rn("s_acctbal")),
    ]);
    let nation = Query::table("nation").rename(&[
        ("n_nationkey", &rn("n_nationkey")),
        ("n_regionkey", &rn("n_regionkey")),
        ("n_name", &rn("n_name")),
    ]);
    let region_q = Query::table("region").rename(&[
        ("r_regionkey", &rn("r_regionkey")),
        ("r_name", &rn("r_name")),
    ]);

    part.join(partsupp, &[(&rn("p_partkey"), &rn("ps_partkey"))])
        .join(supplier, &[(&rn("ps_suppkey"), &rn("s_suppkey"))])
        .join(nation, &[(&rn("s_nationkey"), &rn("n_nationkey"))])
        .join(region_q, &[(&rn("n_regionkey"), &rn("r_regionkey"))])
        .select(Predicate::And(vec![
            Predicate::eq_const(rn("r_name"), region),
            Predicate::ColCmpConst(rn("p_size"), CmpOp::Le, Value::Int(max_part_size)),
        ]))
}

/// TPC-H Q2 (minimum-cost supplier): suppliers offering a qualifying part in the given
/// region at that part's minimum supply cost.
///
/// Structurally this is the pattern of the paper's Example 3,
/// `π_A σ_{B=γ}(R × $_{A'; γ←MIN(C)}(R'))`: the outer block is the five-way join
/// part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region restricted to the region and part
/// size, and the nested aggregate computes the per-part minimum supply cost over the
/// partsupp offers (TPC-H's correlated sub-query, decorrelated into a group-by). The
/// nested block renames its columns with an `_i` suffix so the join of the two blocks
/// has unambiguous column names.
pub fn q2(region: &str, max_part_size: i64) -> Query {
    let outer = q2_join(region, max_part_size, "");
    let inner = Query::table("partsupp")
        .rename(&[
            ("ps_partkey", "ps_partkey_i"),
            ("ps_suppkey", "ps_suppkey_i"),
            ("ps_supplycost", "ps_supplycost_i"),
            ("ps_availqty", "ps_availqty_i"),
        ])
        .group_agg(
            ["ps_partkey_i"],
            vec![AggSpec::new(AggOp::Min, "ps_supplycost_i", "min_cost")],
        );
    outer
        .join(inner, &[("p_partkey", "ps_partkey_i")])
        .select(Predicate::AggCmpCol(
            "min_cost".into(),
            CmpOp::Eq,
            "ps_supplycost".into(),
        ))
        .project(["s_suppkey", "p_partkey", "ps_supplycost"])
}

/// A deterministic variant of any query's database: the paper's `Q0` baseline runs the
/// query on a deterministic database (no expression or probability computation). We
/// model it by setting every tuple's probability to 1, which makes the annotations
/// semantically trivial while exercising the same relational work.
pub fn deterministic_copy(db: &pvc_db::Database) -> pvc_db::Database {
    let mut copy = db.clone();
    let vars: Vec<_> = copy.vars.iter().collect();
    for v in vars {
        copy.vars.set_dist(v, pvc_prob::make::bernoulli(1.0));
    }
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use pvc_db::{classify, try_evaluate, QueryClass};

    fn tiny_db() -> pvc_db::Database {
        generate(&TpchConfig {
            scale_factor: 0.01,
            ..TpchConfig::default()
        })
    }

    #[test]
    fn q1_produces_grouped_counts() {
        let db = tiny_db();
        let result = try_evaluate(&db, &q1(2_000)).unwrap();
        // At most 3 return flags × 2 line statuses groups.
        assert!(result.len() <= 6);
        assert!(!result.is_empty());
        for t in result.iter() {
            let count = t.values[2].as_agg().unwrap();
            assert_eq!(count.op, pvc_algebra::AggOp::Count);
            assert!(count.num_terms() >= 1);
        }
    }

    #[test]
    fn q1_is_tractable() {
        let db = tiny_db();
        assert_ne!(classify(&q1(2_000), &db), QueryClass::General);
    }

    #[test]
    fn q1_validates() {
        let db = tiny_db();
        assert!(q1(1_000).output_schema(&db).is_ok());
    }

    #[test]
    fn q2_validates_and_runs() {
        let db = tiny_db();
        let q = q2("ASIA", 25);
        let schema = q.output_schema(&db).expect("Q2 must validate");
        assert_eq!(
            schema.names(),
            vec!["s_suppkey", "p_partkey", "ps_supplycost"]
        );
        let result = try_evaluate(&db, &q).unwrap();
        // Every result tuple's annotation mentions at least the five joined tuples
        // plus the variables of the nested aggregate.
        for t in result.iter() {
            assert!(t.annotation.vars().len() >= 5);
        }
    }

    #[test]
    fn deterministic_copy_sets_probabilities_to_one() {
        let db = tiny_db();
        let det = deterministic_copy(&db);
        for v in det.vars.iter() {
            assert!((det.vars.prob_true(v) - 1.0).abs() < 1e-12);
        }
        assert_eq!(det.total_tuples(), db.total_tuples());
    }
}
