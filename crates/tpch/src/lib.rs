//! # pvc-tpch
//!
//! A seeded TPC-H-like data generator over tuple-independent pvc-tables and the two
//! TPC-H queries (`Q1`, `Q2`) evaluated in the paper's §7.2, used by Experiment F of
//! the benchmark harness.
//!
//! This crate substitutes the official TPC-H `dbgen` and gigabyte-scale data with a
//! scaled-down synthetic equivalent that preserves the structural properties the
//! experiment depends on; the substitution is documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod queries;

pub use gen::{generate, Cardinalities, TpchConfig};
pub use queries::{deterministic_copy, q1, q2};
