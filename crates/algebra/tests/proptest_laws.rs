//! Property-based tests of the algebraic laws (Definitions 2–4 of the paper) on
//! randomly generated elements.

use proptest::prelude::*;
use pvc_algebra::{
    check_semimodule_laws, check_semiring_laws, CommutativeMonoid, MaxExt, MinExt,
    MonoidValue, PolyVar, Polynomial, PosBool, Semiring, SemiringValue, SumNat, ALL_AGG_OPS,
};

fn small_poly() -> impl Strategy<Value = Polynomial> {
    // Random polynomial: sum of up to 4 monomials of up to 3 variables from x0..x4.
    prop::collection::vec(
        (prop::collection::vec(0u32..5, 0..3), 1u64..3),
        0..4,
    )
    .prop_map(|terms| {
        let mut acc = Polynomial::zero();
        for (vars, coeff) in terms {
            let mut mono = Polynomial::constant(coeff);
            for v in vars {
                mono = mono.mul(&Polynomial::var(PolyVar(v)));
            }
            acc = acc.add(&mono);
        }
        acc
    })
}

fn small_posbool() -> impl Strategy<Value = PosBool> {
    prop::collection::vec(prop::collection::vec(0u32..5, 0..3), 0..4).prop_map(|clauses| {
        let mut acc = PosBool::zero();
        for clause in clauses {
            let mut term = PosBool::one();
            for v in clause {
                term = term.mul(&PosBool::var(PolyVar(v)));
            }
            acc = acc.add(&term);
        }
        acc
    })
}

proptest! {
    #[test]
    fn natural_semiring_laws(a in 0u64..50, b in 0u64..50, c in 0u64..50) {
        prop_assert!(check_semiring_laws(&a, &b, &c).is_ok());
    }

    #[test]
    fn polynomial_semiring_laws(a in small_poly(), b in small_poly(), c in small_poly()) {
        prop_assert!(check_semiring_laws(&a, &b, &c).is_ok());
    }

    #[test]
    fn posbool_semiring_laws(a in small_posbool(), b in small_posbool(), c in small_posbool()) {
        prop_assert!(check_semiring_laws(&a, &b, &c).is_ok());
    }

    #[test]
    fn polynomial_eval_is_homomorphism(
        a in small_poly(),
        b in small_poly(),
        vals in prop::collection::vec(0u64..5, 5),
    ) {
        let valuation = |v: PolyVar| vals[v.0 as usize % vals.len()];
        prop_assert_eq!(a.add(&b).eval(&valuation), a.eval(&valuation) + b.eval(&valuation));
        prop_assert_eq!(a.mul(&b).eval(&valuation), a.eval(&valuation) * b.eval(&valuation));
    }

    #[test]
    fn posbool_eval_agrees_with_polynomial_support(
        a in small_posbool(),
        bits in 0u32..32,
    ) {
        // Evaluating the canonical DNF is monotone: adding true variables never
        // turns a true expression false.
        let truth = |v: PolyVar| bits & (1 << v.0) != 0;
        let all_true = |_: PolyVar| true;
        if a.eval(&truth) {
            prop_assert!(a.eval(&all_true));
        }
    }

    #[test]
    fn semimodule_laws_sum_nat(s1 in 0u64..10, s2 in 0u64..10, m1 in 0u64..10, m2 in 0u64..10) {
        prop_assert!(
            check_semimodule_laws(&s1, &s2, &SumNat(m1), &SumNat(m2)).is_ok()
        );
    }

    #[test]
    fn semimodule_laws_min_max_bool(
        s1 in any::<bool>(), s2 in any::<bool>(), m1 in -20i64..20, m2 in -20i64..20,
    ) {
        prop_assert!(check_semimodule_laws(
            &s1, &s2, &MinExt(MonoidValue::Fin(m1)), &MinExt(MonoidValue::Fin(m2))).is_ok());
        prop_assert!(check_semimodule_laws(
            &s1, &s2, &MaxExt(MonoidValue::Fin(m1)), &MaxExt(MonoidValue::Fin(m2))).is_ok());
    }

    #[test]
    fn agg_op_monoid_laws(
        op_idx in 0usize..5,
        a in -20i64..20,
        b in -20i64..20,
        c in -20i64..20,
    ) {
        let op = ALL_AGG_OPS[op_idx];
        let (a, b, c) = (MonoidValue::Fin(a), MonoidValue::Fin(b), MonoidValue::Fin(c));
        // Commutativity, associativity, identity.
        prop_assert_eq!(op.combine(&a, &b), op.combine(&b, &a));
        prop_assert_eq!(
            op.combine(&op.combine(&a, &b), &c),
            op.combine(&a, &op.combine(&b, &c))
        );
        prop_assert_eq!(op.combine(&a, &op.identity()), a);
    }

    #[test]
    fn scalar_action_distributes_over_semiring_sum(
        op_idx in 0usize..5,
        n1 in 0u64..5,
        n2 in 0u64..5,
        m in -10i64..10,
    ) {
        // (s1 +S s2) ⊗ m  =  s1 ⊗ m  +M  s2 ⊗ m  for the N-semimodules.
        let op = ALL_AGG_OPS[op_idx];
        let m = MonoidValue::Fin(m);
        let s1 = SemiringValue::Nat(n1);
        let s2 = SemiringValue::Nat(n2);
        let lhs = op.scalar_action(&s1.add(&s2), &m);
        let rhs = op.combine(&op.scalar_action(&s1, &m), &op.scalar_action(&s2, &m));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn scalar_action_compatible_with_semiring_product(
        op_idx in 0usize..5,
        n1 in 0u64..4,
        n2 in 0u64..4,
        m in -6i64..6,
    ) {
        // (s1 ·S s2) ⊗ m = s1 ⊗ (s2 ⊗ m).
        let op = ALL_AGG_OPS[op_idx];
        let m = MonoidValue::Fin(m);
        let s1 = SemiringValue::Nat(n1);
        let s2 = SemiringValue::Nat(n2);
        let lhs = op.scalar_action(&s1.mul(&s2), &m);
        let rhs = op.scalar_action(&s1, &op.scalar_action(&s2, &m));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn generic_monoid_fold_matches_iterated_plus(values in prop::collection::vec(0u64..30, 0..8)) {
        let folded = SumNat::sum(values.iter().map(|v| SumNat(*v)));
        prop_assert_eq!(folded.0, values.iter().sum::<u64>());
    }
}
