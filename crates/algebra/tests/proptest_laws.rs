//! Property-based tests of the algebraic laws (Definitions 2–4 of the paper) on
//! randomly generated elements.
//!
//! The properties are checked over a deterministic, seeded stream of random cases
//! (no external property-testing framework): every run exercises the same cases,
//! and a failing case is reported with the index that produced it.

use pvc_algebra::{
    check_semimodule_laws, check_semiring_laws, CommutativeMonoid, MaxExt, MinExt, MonoidValue,
    PolyVar, Polynomial, PosBool, Semiring, SemiringValue, SumNat, ALL_AGG_OPS,
};
use pvc_prob::SeededRng;

const CASES: u64 = 128;

/// Random polynomial: sum of up to 4 monomials of up to 3 variables from x0..x4.
fn small_poly(rng: &mut SeededRng) -> Polynomial {
    let mut acc = Polynomial::zero();
    for _ in 0..rng.gen_range(0usize..4) {
        let mut mono = Polynomial::constant(rng.gen_range(1u32..3) as u64);
        for _ in 0..rng.gen_range(0usize..3) {
            mono = mono.mul(&Polynomial::var(PolyVar(rng.gen_range(0u32..5))));
        }
        acc = acc.add(&mono);
    }
    acc
}

/// Random positive Boolean expression: a DNF of up to 4 clauses of up to 3 literals.
fn small_posbool(rng: &mut SeededRng) -> PosBool {
    let mut acc = PosBool::zero();
    for _ in 0..rng.gen_range(0usize..4) {
        let mut term = PosBool::one();
        for _ in 0..rng.gen_range(0usize..3) {
            term = term.mul(&PosBool::var(PolyVar(rng.gen_range(0u32..5))));
        }
        acc = acc.add(&term);
    }
    acc
}

#[test]
fn natural_semiring_laws() {
    let mut rng = SeededRng::seed_from_u64(0xA1);
    for case in 0..CASES {
        let (a, b, c) = (
            rng.gen_range(0i64..50) as u64,
            rng.gen_range(0i64..50) as u64,
            rng.gen_range(0i64..50) as u64,
        );
        assert!(
            check_semiring_laws(&a, &b, &c).is_ok(),
            "case {case}: ({a}, {b}, {c})"
        );
    }
}

#[test]
fn polynomial_semiring_laws() {
    let mut rng = SeededRng::seed_from_u64(0xA2);
    for case in 0..CASES {
        let (a, b, c) = (
            small_poly(&mut rng),
            small_poly(&mut rng),
            small_poly(&mut rng),
        );
        assert!(
            check_semiring_laws(&a, &b, &c).is_ok(),
            "case {case}: ({a:?}, {b:?}, {c:?})"
        );
    }
}

#[test]
fn posbool_semiring_laws() {
    let mut rng = SeededRng::seed_from_u64(0xA3);
    for case in 0..CASES {
        let (a, b, c) = (
            small_posbool(&mut rng),
            small_posbool(&mut rng),
            small_posbool(&mut rng),
        );
        assert!(
            check_semiring_laws(&a, &b, &c).is_ok(),
            "case {case}: ({a:?}, {b:?}, {c:?})"
        );
    }
}

#[test]
fn polynomial_eval_is_homomorphism() {
    let mut rng = SeededRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let a = small_poly(&mut rng);
        let b = small_poly(&mut rng);
        let vals: Vec<u64> = (0..5).map(|_| rng.gen_range(0i64..5) as u64).collect();
        let valuation = |v: PolyVar| vals[v.0 as usize % vals.len()];
        assert_eq!(
            a.add(&b).eval(&valuation),
            a.eval(&valuation) + b.eval(&valuation)
        );
        assert_eq!(
            a.mul(&b).eval(&valuation),
            a.eval(&valuation) * b.eval(&valuation)
        );
    }
}

#[test]
fn posbool_eval_is_monotone() {
    // Evaluating the canonical DNF is monotone: adding true variables never turns a
    // true expression false.
    let mut rng = SeededRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let a = small_posbool(&mut rng);
        let bits = (rng.next_u64() & 0xFFFF_FFFF) as u32;
        let truth = |v: PolyVar| bits & (1 << v.0) != 0;
        let all_true = |_: PolyVar| true;
        if a.eval(&truth) {
            assert!(a.eval(&all_true));
        }
    }
}

#[test]
fn semimodule_laws_sum_nat() {
    let mut rng = SeededRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let s1 = rng.gen_range(0i64..10) as u64;
        let s2 = rng.gen_range(0i64..10) as u64;
        let m1 = SumNat(rng.gen_range(0i64..10) as u64);
        let m2 = SumNat(rng.gen_range(0i64..10) as u64);
        assert!(check_semimodule_laws(&s1, &s2, &m1, &m2).is_ok());
    }
}

#[test]
fn semimodule_laws_min_max_bool() {
    let mut rng = SeededRng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let s1 = rng.next_u64() & 1 == 1;
        let s2 = rng.next_u64() & 1 == 1;
        let m1 = rng.gen_range(-20i64..20);
        let m2 = rng.gen_range(-20i64..20);
        assert!(check_semimodule_laws(
            &s1,
            &s2,
            &MinExt(MonoidValue::Fin(m1)),
            &MinExt(MonoidValue::Fin(m2))
        )
        .is_ok());
        assert!(check_semimodule_laws(
            &s1,
            &s2,
            &MaxExt(MonoidValue::Fin(m1)),
            &MaxExt(MonoidValue::Fin(m2))
        )
        .is_ok());
    }
}

#[test]
fn agg_op_monoid_laws() {
    let mut rng = SeededRng::seed_from_u64(0xA8);
    for _ in 0..CASES {
        let op = ALL_AGG_OPS[rng.gen_range(0usize..ALL_AGG_OPS.len())];
        let a = MonoidValue::Fin(rng.gen_range(-20i64..20));
        let b = MonoidValue::Fin(rng.gen_range(-20i64..20));
        let c = MonoidValue::Fin(rng.gen_range(-20i64..20));
        // Commutativity, associativity, identity.
        assert_eq!(op.combine(&a, &b), op.combine(&b, &a));
        assert_eq!(
            op.combine(&op.combine(&a, &b), &c),
            op.combine(&a, &op.combine(&b, &c))
        );
        assert_eq!(op.combine(&a, &op.identity()), a);
    }
}

#[test]
fn scalar_action_distributes_over_semiring_sum() {
    // (s1 +S s2) ⊗ m = s1 ⊗ m +M s2 ⊗ m for the N-semimodules.
    let mut rng = SeededRng::seed_from_u64(0xA9);
    for _ in 0..CASES {
        let op = ALL_AGG_OPS[rng.gen_range(0usize..ALL_AGG_OPS.len())];
        let m = MonoidValue::Fin(rng.gen_range(-10i64..10));
        let s1 = SemiringValue::Nat(rng.gen_range(0i64..5) as u64);
        let s2 = SemiringValue::Nat(rng.gen_range(0i64..5) as u64);
        let lhs = op.scalar_action(&s1.add(&s2), &m);
        let rhs = op.combine(&op.scalar_action(&s1, &m), &op.scalar_action(&s2, &m));
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn scalar_action_compatible_with_semiring_product() {
    // (s1 ·S s2) ⊗ m = s1 ⊗ (s2 ⊗ m).
    let mut rng = SeededRng::seed_from_u64(0xAA);
    for _ in 0..CASES {
        let op = ALL_AGG_OPS[rng.gen_range(0usize..ALL_AGG_OPS.len())];
        let m = MonoidValue::Fin(rng.gen_range(-6i64..6));
        let s1 = SemiringValue::Nat(rng.gen_range(0i64..4) as u64);
        let s2 = SemiringValue::Nat(rng.gen_range(0i64..4) as u64);
        let lhs = op.scalar_action(&s1.mul(&s2), &m);
        let rhs = op.scalar_action(&s1, &op.scalar_action(&s2, &m));
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn generic_monoid_fold_matches_iterated_plus() {
    let mut rng = SeededRng::seed_from_u64(0xAB);
    for _ in 0..CASES {
        let values: Vec<u64> = (0..rng.gen_range(0usize..8))
            .map(|_| rng.gen_range(0i64..30) as u64)
            .collect();
        let folded = SumNat::sum(values.iter().map(|v| SumNat(*v)));
        assert_eq!(folded.0, values.iter().sum::<u64>());
    }
}
