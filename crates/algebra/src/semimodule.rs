//! Semimodules: combining a commutative monoid of aggregation values with a semiring
//! of annotations (§2.2, Definition 4 of the paper).
//!
//! An `S`-semimodule `M` is a commutative monoid `(M, +_M, 0_M)` together with a
//! scalar action `⊗ : S × M → M` satisfying the five semimodule axioms. In this
//! system semimodules are what makes "aggregated value conditioned on an annotation"
//! a first-class algebraic object: the expression `Φ ⊗ v` is "value `v`, present with
//! multiplicity/condition `Φ`".
//!
//! The dynamic engine realises the semimodules `B ⊗ M` and `N ⊗ M` for all five
//! aggregation monoids through [`crate::monoid::AggOp::scalar_action`]; this module
//! provides the *generic* trait plus law checking used by property tests.

use crate::monoid::CommutativeMonoid;
use crate::semiring::Semiring;

/// An `S`-semimodule (Definition 4 of the paper).
pub trait Semimodule<S: Semiring>: CommutativeMonoid {
    /// The scalar action `s ⊗ m`.
    fn scale(s: &S, m: &Self) -> Self;
}

/// The canonical `N`-semimodule structure on the SUM monoid: `n ⊗ m = n·m`.
impl Semimodule<u64> for crate::monoid::SumNat {
    fn scale(s: &u64, m: &Self) -> Self {
        crate::monoid::SumNat(s * m.0)
    }
}

/// The `B`-semimodule structure on the MIN monoid: `⊥ ⊗ m = +∞`, `⊤ ⊗ m = m`.
impl Semimodule<bool> for crate::monoid::MinExt {
    fn scale(s: &bool, m: &Self) -> Self {
        if *s {
            *m
        } else {
            <Self as CommutativeMonoid>::zero()
        }
    }
}

/// The `B`-semimodule structure on the MAX monoid.
impl Semimodule<bool> for crate::monoid::MaxExt {
    fn scale(s: &bool, m: &Self) -> Self {
        if *s {
            *m
        } else {
            <Self as CommutativeMonoid>::zero()
        }
    }
}

/// The `N`-semimodule structure on the MIN monoid: any non-zero multiplicity keeps the
/// value, zero multiplicity maps to the neutral element `+∞`.
impl Semimodule<u64> for crate::monoid::MinExt {
    fn scale(s: &u64, m: &Self) -> Self {
        if *s > 0 {
            *m
        } else {
            <Self as CommutativeMonoid>::zero()
        }
    }
}

/// The `N`-semimodule structure on the MAX monoid.
impl Semimodule<u64> for crate::monoid::MaxExt {
    fn scale(s: &u64, m: &Self) -> Self {
        if *s > 0 {
            *m
        } else {
            <Self as CommutativeMonoid>::zero()
        }
    }
}

/// Check all five semimodule axioms of Definition 4 on sample elements.
///
/// Returns `Err` naming the first violated axiom.
pub fn check_semimodule_laws<S: Semiring, M: Semimodule<S>>(
    s1: &S,
    s2: &S,
    m1: &M,
    m2: &M,
) -> Result<(), String> {
    let err = |law: &str| Err(format!("semimodule law violated: {law}"));
    // s1 ⊗ (m1 + m2) = s1 ⊗ m1 + s1 ⊗ m2
    if M::scale(s1, &m1.plus(m2)) != M::scale(s1, m1).plus(&M::scale(s1, m2)) {
        return err("distributivity over monoid sum");
    }
    // (s1 + s2) ⊗ m1 = s1 ⊗ m1 + s2 ⊗ m1
    if M::scale(&s1.add(s2), m1) != M::scale(s1, m1).plus(&M::scale(s2, m1)) {
        return err("distributivity over semiring sum");
    }
    // (s1 · s2) ⊗ m1 = s1 ⊗ (s2 ⊗ m1)
    if M::scale(&s1.mul(s2), m1) != M::scale(s1, &M::scale(s2, m1)) {
        return err("compatibility with semiring multiplication");
    }
    // s1 ⊗ 0_M = 0_S ⊗ m1 = 0_M
    if M::scale(s1, &M::zero()) != M::zero() || M::scale(&S::zero(), m1) != M::zero() {
        return err("annihilation");
    }
    // 1_S ⊗ m1 = m1
    if M::scale(&S::one(), m1) != *m1 {
        return err("unit action");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{MaxExt, MinExt, SumNat};
    use crate::value::MonoidValue;

    #[test]
    fn sum_semimodule_over_naturals() {
        let scalars = [0u64, 1, 2, 5];
        let values = [SumNat(0), SumNat(1), SumNat(7)];
        for s1 in scalars {
            for s2 in scalars {
                for m1 in values {
                    for m2 in values {
                        check_semimodule_laws(&s1, &s2, &m1, &m2).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn min_max_semimodules_over_booleans() {
        let scalars = [false, true];
        let mins = [
            MinExt(MonoidValue::Fin(3)),
            MinExt(MonoidValue::Fin(-1)),
            MinExt(MonoidValue::PosInf),
        ];
        let maxs = [
            MaxExt(MonoidValue::Fin(3)),
            MaxExt(MonoidValue::Fin(-1)),
            MaxExt(MonoidValue::NegInf),
        ];
        for s1 in scalars {
            for s2 in scalars {
                for m1 in mins {
                    for m2 in mins {
                        check_semimodule_laws(&s1, &s2, &m1, &m2).unwrap();
                    }
                }
                for m1 in maxs {
                    for m2 in maxs {
                        check_semimodule_laws(&s1, &s2, &m1, &m2).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn min_max_semimodules_over_naturals() {
        let scalars = [0u64, 1, 3];
        let mins = [MinExt(MonoidValue::Fin(10)), MinExt(MonoidValue::PosInf)];
        for s1 in scalars {
            for s2 in scalars {
                for m1 in mins {
                    for m2 in mins {
                        check_semimodule_laws(&s1, &s2, &m1, &m2).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn sum_over_booleans_would_break_distributivity() {
        // The paper notes that B ⊗ N over SUM "would not have the intuitive semantics";
        // concretely, a naive action ⊤⊗m = m over B violates
        // (s1 + s2) ⊗ m = s1⊗m + s2⊗m because ⊤∨⊤ = ⊤ but m + m ≠ m in SUM.
        // We verify the failure explicitly rather than providing the impl.
        let lhs = SumNat(5); // (⊤ ∨ ⊤) ⊗ 5 under the naive action
        let rhs = SumNat(5).plus(&SumNat(5)); // ⊤⊗5 + ⊤⊗5
        assert_ne!(lhs, rhs);
    }
}
