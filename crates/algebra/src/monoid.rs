//! Commutative monoids for aggregation (§2.2 of the paper).
//!
//! Aggregation over a column fixes a domain of values and a commutative, associative
//! binary operation with a neutral element:
//!
//! * `SUM   = (N, +, 0)`
//! * `PROD  = (N, ·, 1)`
//! * `COUNT = (N, +, 0)` (a special case of SUM where every contribution is `1`)
//! * `MIN   = (N ∪ {±∞}, min, +∞)`
//! * `MAX   = (N ∪ {±∞}, max, −∞)`
//!
//! Two formulations coexist:
//!
//! * [`CommutativeMonoid`] — the generic trait used for law checking and for the
//!   provenance-polynomial machinery.
//! * [`AggOp`] — the *dynamic* aggregation operator used by the expression and
//!   decomposition-tree layers, operating on [`MonoidValue`].

use crate::value::{MonoidValue, SemiringValue};
use std::fmt;

/// A commutative monoid `(M, +, 0)` (Definition 2 of the paper).
pub trait CommutativeMonoid: Clone + PartialEq + fmt::Debug {
    /// The neutral element `0_M`.
    fn zero() -> Self;

    /// The monoid operation. Must be commutative and associative with [`Self::zero`]
    /// as neutral element.
    fn plus(&self, other: &Self) -> Self;

    /// Fold an iterator of monoid elements.
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self
    where
        Self: Sized,
    {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.plus(&x))
    }
}

/// The additive monoid of natural numbers, `(N, +, 0)` — SUM / COUNT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SumNat(pub u64);

impl CommutativeMonoid for SumNat {
    fn zero() -> Self {
        SumNat(0)
    }
    fn plus(&self, other: &Self) -> Self {
        SumNat(self.0 + other.0)
    }
}

/// The multiplicative monoid of natural numbers, `(N, ·, 1)` — PROD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProdNat(pub u64);

impl CommutativeMonoid for ProdNat {
    fn zero() -> Self {
        ProdNat(1)
    }
    fn plus(&self, other: &Self) -> Self {
        ProdNat(self.0 * other.0)
    }
}

/// The MIN monoid over the extended integers, `(Z ∪ {±∞}, min, +∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MinExt(pub MonoidValue);

impl CommutativeMonoid for MinExt {
    fn zero() -> Self {
        MinExt(MonoidValue::PosInf)
    }
    fn plus(&self, other: &Self) -> Self {
        MinExt(self.0.min(other.0))
    }
}

/// The MAX monoid over the extended integers, `(Z ∪ {±∞}, max, −∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaxExt(pub MonoidValue);

impl CommutativeMonoid for MaxExt {
    fn zero() -> Self {
        MaxExt(MonoidValue::NegInf)
    }
    fn plus(&self, other: &Self) -> Self {
        MaxExt(self.0.max(other.0))
    }
}

/// A dynamic aggregation operator: which monoid a semimodule expression is summed in.
///
/// This is the `op` non-terminal of the Fig. 2 grammar
/// (`op ::= min | max | count | sum | prod`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// MIN aggregation — monoid `(Z ∪ {±∞}, min, +∞)`.
    Min,
    /// MAX aggregation — monoid `(Z ∪ {±∞}, max, −∞)`.
    Max,
    /// SUM aggregation — monoid `(Z, +, 0)`.
    Sum,
    /// COUNT aggregation — SUM over the constant value `1`.
    Count,
    /// PROD aggregation — monoid `(Z, ·, 1)`.
    Prod,
}

/// All aggregation operators, in a stable order (useful for sweeps and tests).
pub const ALL_AGG_OPS: [AggOp; 5] = [
    AggOp::Min,
    AggOp::Max,
    AggOp::Sum,
    AggOp::Count,
    AggOp::Prod,
];

impl AggOp {
    /// The neutral element `0_M` of this monoid.
    pub fn identity(&self) -> MonoidValue {
        match self {
            AggOp::Min => MonoidValue::PosInf,
            AggOp::Max => MonoidValue::NegInf,
            AggOp::Sum | AggOp::Count => MonoidValue::Fin(0),
            AggOp::Prod => MonoidValue::Fin(1),
        }
    }

    /// The monoid operation `+_M` on two values.
    pub fn combine(&self, a: &MonoidValue, b: &MonoidValue) -> MonoidValue {
        match self {
            AggOp::Min => (*a).min(*b),
            AggOp::Max => (*a).max(*b),
            AggOp::Sum | AggOp::Count => a.saturating_add(b),
            AggOp::Prod => a.saturating_mul(b),
        }
    }

    /// Fold an iterator of monoid values.
    pub fn fold<I: IntoIterator<Item = MonoidValue>>(&self, iter: I) -> MonoidValue {
        iter.into_iter()
            .fold(self.identity(), |acc, v| self.combine(&acc, &v))
    }

    /// The semimodule scalar action `s ⊗ m` for a semiring value `s` and monoid value
    /// `m` (Definition 4 of the paper).
    ///
    /// For the Boolean semiring, `⊥ ⊗ m = 0_M` and `⊤ ⊗ m = m`. For the semiring `N`,
    /// `n ⊗ m` is the `n`-fold monoid sum of `m` (so `n·m` for SUM, `m` for MIN/MAX
    /// when `n > 0`, and `m^n` for PROD).
    pub fn scalar_action(&self, s: &SemiringValue, m: &MonoidValue) -> MonoidValue {
        let n = s.as_multiplicity();
        if n == 0 {
            return self.identity();
        }
        match self {
            AggOp::Min | AggOp::Max => *m,
            AggOp::Sum | AggOp::Count => match m {
                MonoidValue::Fin(v) => MonoidValue::Fin(v * n as i64),
                other => *other,
            },
            AggOp::Prod => match m {
                MonoidValue::Fin(v) => {
                    let mut acc: i64 = 1;
                    for _ in 0..n {
                        acc *= v;
                    }
                    MonoidValue::Fin(acc)
                }
                other => *other,
            },
        }
    }

    /// Whether the size of the distribution of a sum in this monoid is bounded by the
    /// number of distinct leaf values (true for MIN and MAX, cf. Proposition 2).
    pub fn is_selective(&self) -> bool {
        matches!(self, AggOp::Min | AggOp::Max)
    }

    /// Whether this operator aggregates the constant `1` per tuple (COUNT) rather than
    /// a column value.
    pub fn is_count(&self) -> bool {
        matches!(self, AggOp::Count)
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
            AggOp::Sum => "SUM",
            AggOp::Count => "COUNT",
            AggOp::Prod => "PROD",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::MonoidValue::*;

    #[test]
    fn identities() {
        assert_eq!(AggOp::Min.identity(), PosInf);
        assert_eq!(AggOp::Max.identity(), NegInf);
        assert_eq!(AggOp::Sum.identity(), Fin(0));
        assert_eq!(AggOp::Count.identity(), Fin(0));
        assert_eq!(AggOp::Prod.identity(), Fin(1));
    }

    #[test]
    fn combine_matches_semantics() {
        assert_eq!(AggOp::Min.combine(&Fin(3), &Fin(7)), Fin(3));
        assert_eq!(AggOp::Max.combine(&Fin(3), &Fin(7)), Fin(7));
        assert_eq!(AggOp::Sum.combine(&Fin(3), &Fin(7)), Fin(10));
        assert_eq!(AggOp::Prod.combine(&Fin(3), &Fin(7)), Fin(21));
        assert_eq!(AggOp::Min.combine(&PosInf, &Fin(7)), Fin(7));
        assert_eq!(AggOp::Max.combine(&NegInf, &Fin(7)), Fin(7));
    }

    #[test]
    fn fold_example_from_paper() {
        // min(10, 11) from the introduction's Example 1.
        let vals = vec![Fin(10), Fin(11)];
        assert_eq!(AggOp::Min.fold(vals), Fin(10));
        // Empty group folds to the neutral element.
        assert_eq!(AggOp::Min.fold(Vec::new()), PosInf);
        assert_eq!(AggOp::Sum.fold(Vec::new()), Fin(0));
    }

    #[test]
    fn scalar_action_boolean() {
        let t = SemiringValue::Bool(true);
        let f = SemiringValue::Bool(false);
        for op in ALL_AGG_OPS {
            assert_eq!(op.scalar_action(&f, &Fin(42)), op.identity(), "{op}");
            assert_eq!(op.scalar_action(&t, &Fin(42)), Fin(42), "{op}");
        }
    }

    #[test]
    fn scalar_action_natural_multiplicities() {
        // Example 6 of the paper: 6 ⊗ 5 in the MIN monoid is 5 ⊕min ... ⊕min 5 = 5.
        let six = SemiringValue::Nat(6);
        assert_eq!(AggOp::Min.scalar_action(&six, &Fin(5)), Fin(5));
        // In SUM, n ⊗ m is the n-fold sum n·m.
        assert_eq!(AggOp::Sum.scalar_action(&six, &Fin(5)), Fin(30));
        // In PROD, n ⊗ m is m^n.
        assert_eq!(
            AggOp::Prod.scalar_action(&SemiringValue::Nat(3), &Fin(2)),
            Fin(8)
        );
        // Zero multiplicity always yields the neutral element.
        assert_eq!(
            AggOp::Sum.scalar_action(&SemiringValue::Nat(0), &Fin(5)),
            Fin(0)
        );
    }

    #[test]
    fn generic_monoids_satisfy_laws_on_samples() {
        fn check<M: CommutativeMonoid>(samples: &[M]) {
            for a in samples {
                assert_eq!(a.plus(&M::zero()), *a);
                assert_eq!(M::zero().plus(a), *a);
                for b in samples {
                    assert_eq!(a.plus(b), b.plus(a));
                    for c in samples {
                        assert_eq!(a.plus(b).plus(c), a.plus(&b.plus(c)));
                    }
                }
            }
        }
        check(&[SumNat(0), SumNat(1), SumNat(5), SumNat(17)]);
        check(&[ProdNat(1), ProdNat(2), ProdNat(3)]);
        check(&[MinExt(Fin(1)), MinExt(PosInf), MinExt(Fin(-4))]);
        check(&[MaxExt(Fin(1)), MaxExt(NegInf), MaxExt(Fin(-4))]);
    }

    #[test]
    fn selective_flags() {
        assert!(AggOp::Min.is_selective());
        assert!(AggOp::Max.is_selective());
        assert!(!AggOp::Sum.is_selective());
        assert!(!AggOp::Count.is_selective());
        assert!(AggOp::Count.is_count());
    }

    #[test]
    fn display_names() {
        assert_eq!(AggOp::Sum.to_string(), "SUM");
        assert_eq!(AggOp::Count.to_string(), "COUNT");
    }
}
