//! Provenance polynomials: the free commutative semiring `N[X]` over a set of
//! variables (§2.2 of the paper, "the most general semirings are those generated over
//! a set of variables").
//!
//! Elements are multivariate polynomials with natural-number coefficients, kept in a
//! canonical sum-of-monomials form so that structural equality coincides with semiring
//! equality. A valuation of the variables into any other commutative semiring extends
//! uniquely to a semiring homomorphism ([`Polynomial::eval`]), which is the formal
//! backbone of "each valuation defines a possible world".

use crate::semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A variable identifier in the generated semiring.
///
/// Kept deliberately small and `Copy`; the expression layer (`pvc-expr`) has its own
/// interned variable type — this one exists so that the algebra crate is
/// self-contained and usable on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PolyVar(pub u32);

/// A monomial: a multiset of variables, represented as variable → exponent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial(BTreeMap<PolyVar, u32>);

impl Monomial {
    /// The empty monomial `1`.
    pub fn one() -> Self {
        Monomial(BTreeMap::new())
    }

    /// The monomial consisting of a single variable.
    pub fn var(v: PolyVar) -> Self {
        let mut m = BTreeMap::new();
        m.insert(v, 1);
        Monomial(m)
    }

    /// Product of two monomials (exponent-wise sum).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (v, e) in &other.0 {
            *out.entry(*v).or_insert(0) += e;
        }
        Monomial(out)
    }

    /// Total degree of the monomial.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// The variables occurring in this monomial.
    pub fn vars(&self) -> impl Iterator<Item = PolyVar> + '_ {
        self.0.keys().copied()
    }

    /// Evaluate under a valuation of variables into a semiring.
    pub fn eval<S: Semiring>(&self, valuation: &impl Fn(PolyVar) -> S) -> S {
        let mut acc = S::one();
        for (v, e) in &self.0 {
            let val = valuation(*v);
            for _ in 0..*e {
                acc = acc.mul(&val);
            }
        }
        acc
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in &self.0 {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "x{}", v.0)?;
            } else {
                write!(f, "x{}^{}", v.0, e)?;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial: a canonical sum of monomials with `u64` coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial(BTreeMap<Monomial, u64>);

impl Polynomial {
    /// The constant polynomial for a natural number.
    pub fn constant(c: u64) -> Self {
        let mut p = BTreeMap::new();
        if c != 0 {
            p.insert(Monomial::one(), c);
        }
        Polynomial(p)
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: PolyVar) -> Self {
        let mut p = BTreeMap::new();
        p.insert(Monomial::var(v), 1);
        Polynomial(p)
    }

    /// Number of monomials with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.0.len()
    }

    /// The set of variables occurring in the polynomial.
    pub fn vars(&self) -> Vec<PolyVar> {
        let mut vs: Vec<PolyVar> = self.0.keys().flat_map(|m| m.vars()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Total degree (maximum monomial degree), or 0 for the zero polynomial.
    pub fn degree(&self) -> u32 {
        self.0.keys().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Evaluate the polynomial under a valuation into any commutative semiring.
    ///
    /// This is the unique semiring homomorphism extending the valuation — the formal
    /// device behind possible-world semantics.
    pub fn eval<S: Semiring>(&self, valuation: &impl Fn(PolyVar) -> S) -> S {
        let mut acc = S::zero();
        for (mono, coeff) in &self.0 {
            let mut term = mono.eval(valuation);
            // coeff-fold sum of the monomial's value.
            let mut repeated = S::zero();
            for _ in 0..*coeff {
                repeated = repeated.add(&term);
            }
            term = repeated;
            acc = acc.add(&term);
        }
        acc
    }

    fn normalized(mut self) -> Self {
        self.0.retain(|_, c| *c != 0);
        self
    }
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial(BTreeMap::new())
    }

    fn one() -> Self {
        Polynomial::constant(1)
    }

    fn add(&self, other: &Self) -> Self {
        let mut out = self.0.clone();
        for (m, c) in &other.0 {
            *out.entry(m.clone()).or_insert(0) += c;
        }
        Polynomial(out).normalized()
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.0 {
            for (m2, c2) in &other.0 {
                *out.entry(m1.mul(m2)).or_insert(0) += c1 * c2;
            }
        }
        Polynomial(out).normalized()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.0 {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if *c == 1 && !m.0.is_empty() {
                write!(f, "{m}")?;
            } else if m.0.is_empty() {
                write!(f, "{c}")?;
            } else {
                write!(f, "{c}·{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_semiring_laws;

    fn x(i: u32) -> Polynomial {
        Polynomial::var(PolyVar(i))
    }

    #[test]
    fn distributivity_identifies_expressions() {
        // The paper: x1(x2 + x3) equals x1x2 + x1x3 by the distributivity law.
        let lhs = x(1).mul(&x(2).add(&x(3)));
        let rhs = x(1).mul(&x(2)).add(&x(1).mul(&x(3)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn polynomial_semiring_laws_on_samples() {
        let samples = [
            Polynomial::zero(),
            Polynomial::one(),
            x(1),
            x(2),
            x(1).add(&x(2)),
            x(1).mul(&x(2)).add(&Polynomial::constant(3)),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_semiring_laws(a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn eval_is_a_homomorphism_into_naturals() {
        let p = x(1).mul(&x(2).add(&x(3))).add(&Polynomial::constant(2));
        let q = x(2).mul(&x(2)).add(&x(1));
        let valuation = |v: PolyVar| -> u64 { (v.0 as u64) + 1 };
        // hom(p + q) = hom(p) + hom(q) and hom(p·q) = hom(p)·hom(q).
        assert_eq!(
            p.add(&q).eval(&valuation),
            p.eval(&valuation) + q.eval(&valuation)
        );
        assert_eq!(
            p.mul(&q).eval(&valuation),
            p.eval(&valuation) * q.eval(&valuation)
        );
        // Spot-check the actual value: x1=2, x2=3, x3=4 ⇒ 2·(3+4)+2 = 16.
        assert_eq!(p.eval(&valuation), 16);
    }

    #[test]
    fn eval_into_booleans_gives_set_semantics() {
        // x1(x2 + x3): present iff x1 and at least one of x2, x3 are present.
        let p = x(1).mul(&x(2).add(&x(3)));
        let world = |present: &[u32]| {
            let present = present.to_vec();
            move |v: PolyVar| present.contains(&v.0)
        };
        assert!(p.eval(&world(&[1, 2])));
        assert!(p.eval(&world(&[1, 3])));
        assert!(!p.eval(&world(&[2, 3])));
        assert!(!p.eval(&world(&[1])));
    }

    #[test]
    fn degree_terms_and_vars() {
        let p = x(1).mul(&x(1)).add(&x(2)).add(&Polynomial::constant(5));
        assert_eq!(p.degree(), 2);
        assert_eq!(p.num_terms(), 3);
        assert_eq!(p.vars(), vec![PolyVar(1), PolyVar(2)]);
        assert_eq!(Polynomial::zero().degree(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::constant(3).to_string(), "3");
        let p = x(1).mul(&x(2)).add(&x(1));
        assert_eq!(p.to_string(), "x1 + x1·x2");
    }
}
