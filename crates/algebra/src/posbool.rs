//! The semiring `PosBool(X)` of positive Boolean expressions over a variable set `X`
//! (§2.2 of the paper), kept in canonical *irredundant monotone DNF* form.
//!
//! Elements are sets of clauses (each clause a set of variables); absorption
//! (`c ⊆ c' ⇒ drop c'`) keeps the representation canonical so that structural equality
//! coincides with logical equivalence of monotone formulas. This gives an executable
//! witness for the paper's claim that `x1(x2 + x3)` and `x1x2 + x1x3` denote the same
//! semiring element.

use crate::polynomial::PolyVar;
use crate::semiring::Semiring;
use std::collections::BTreeSet;
use std::fmt;

/// A positive Boolean expression in canonical irredundant monotone DNF.
///
/// `⊥` is the empty clause set; `⊤` is the set containing the empty clause.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PosBool {
    clauses: BTreeSet<BTreeSet<PolyVar>>,
}

impl PosBool {
    /// The expression consisting of a single variable.
    pub fn var(v: PolyVar) -> Self {
        let mut clause = BTreeSet::new();
        clause.insert(v);
        let mut clauses = BTreeSet::new();
        clauses.insert(clause);
        PosBool { clauses }
    }

    /// The constant `⊤`.
    pub fn top() -> Self {
        let mut clauses = BTreeSet::new();
        clauses.insert(BTreeSet::new());
        PosBool { clauses }
    }

    /// The constant `⊥`.
    pub fn bottom() -> Self {
        PosBool::default()
    }

    /// The clauses of the canonical DNF.
    pub fn clauses(&self) -> impl Iterator<Item = &BTreeSet<PolyVar>> {
        self.clauses.iter()
    }

    /// The variables occurring in the expression.
    pub fn vars(&self) -> BTreeSet<PolyVar> {
        self.clauses.iter().flatten().copied().collect()
    }

    /// Evaluate under a truth assignment of the variables.
    pub fn eval(&self, truth: &impl Fn(PolyVar) -> bool) -> bool {
        self.clauses
            .iter()
            .any(|clause| clause.iter().all(|v| truth(*v)))
    }

    /// Remove clauses that are supersets of other clauses (absorption law).
    fn absorb(mut self) -> Self {
        let clauses: Vec<_> = self.clauses.iter().cloned().collect();
        self.clauses
            .retain(|c| !clauses.iter().any(|other| other != c && other.is_subset(c)));
        self
    }
}

impl Semiring for PosBool {
    fn zero() -> Self {
        PosBool::bottom()
    }

    fn one() -> Self {
        PosBool::top()
    }

    fn add(&self, other: &Self) -> Self {
        let mut clauses = self.clauses.clone();
        clauses.extend(other.clauses.iter().cloned());
        PosBool { clauses }.absorb()
    }

    fn mul(&self, other: &Self) -> Self {
        let mut clauses = BTreeSet::new();
        for c1 in &self.clauses {
            for c2 in &other.clauses {
                let mut c = c1.clone();
                c.extend(c2.iter().copied());
                clauses.insert(c);
            }
        }
        PosBool { clauses }.absorb()
    }
}

impl fmt::Display for PosBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊥");
        }
        let mut first_clause = true;
        for clause in &self.clauses {
            if !first_clause {
                write!(f, " + ")?;
            }
            first_clause = false;
            if clause.is_empty() {
                write!(f, "⊤")?;
            } else {
                let mut first_var = true;
                for v in clause {
                    if !first_var {
                        write!(f, "·")?;
                    }
                    first_var = false;
                    write!(f, "x{}", v.0)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::check_semiring_laws;

    fn x(i: u32) -> PosBool {
        PosBool::var(PolyVar(i))
    }

    #[test]
    fn distributivity_is_structural_equality() {
        // The paper: x1(x2 + x3) = x1x2 + x1x3 in PosBool(X).
        let lhs = x(1).mul(&x(2).add(&x(3)));
        let rhs = x(1).mul(&x(2)).add(&x(1).mul(&x(3)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn absorption() {
        // x1 + x1·x2 = x1.
        let e = x(1).add(&x(1).mul(&x(2)));
        assert_eq!(e, x(1));
        // Idempotence of + and ·.
        assert_eq!(x(1).add(&x(1)), x(1));
        assert_eq!(x(1).mul(&x(1)), x(1));
    }

    #[test]
    fn constants() {
        assert_eq!(x(1).mul(&PosBool::top()), x(1));
        assert_eq!(x(1).mul(&PosBool::bottom()), PosBool::bottom());
        assert_eq!(x(1).add(&PosBool::bottom()), x(1));
        // ⊤ absorbs everything under +.
        assert_eq!(x(1).add(&PosBool::top()), PosBool::top());
    }

    #[test]
    fn semiring_laws_on_samples() {
        let samples = [
            PosBool::bottom(),
            PosBool::top(),
            x(1),
            x(2),
            x(1).add(&x(2)),
            x(1).mul(&x(2)).add(&x(3)),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_semiring_laws(a, b, c).unwrap();
                }
            }
        }
    }

    #[test]
    fn canonical_form_respects_logical_equivalence() {
        // Two structurally different ways to write the same monotone function.
        let e1 = x(1).mul(&x(2).add(&x(3))).add(&x(2).mul(&x(3)));
        let e2 = x(1).mul(&x(2)).add(&x(1).mul(&x(3))).add(&x(2).mul(&x(3)));
        assert_eq!(e1, e2);
        // And evaluation agrees on all assignments of the three variables.
        for bits in 0..8u32 {
            let truth = move |v: PolyVar| bits & (1 << v.0) != 0;
            assert_eq!(e1.eval(&truth), e2.eval(&truth));
        }
    }

    #[test]
    fn display() {
        assert_eq!(PosBool::bottom().to_string(), "⊥");
        assert_eq!(PosBool::top().to_string(), "⊤");
        assert_eq!(x(1).mul(&x(2)).to_string(), "x1·x2");
    }
}
