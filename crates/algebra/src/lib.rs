//! # pvc-algebra
//!
//! Algebraic foundations for probabilistic databases with aggregation:
//! commutative **monoids** (the aggregation operations), commutative **semirings**
//! (tuple annotations / provenance), and **semimodules** (aggregated values
//! conditioned on annotations), following §2.2 of
//! *"Aggregation in Probabilistic Databases via Knowledge Compilation"*
//! (Fink, Han, Olteanu, VLDB 2012).
//!
//! The crate exposes two parallel formulations:
//!
//! * **Generic traits** ([`Semiring`], [`CommutativeMonoid`], [`Semimodule`]) with
//!   several concrete instances (Booleans, naturals, provenance polynomials
//!   [`Polynomial`], positive Boolean expressions [`PosBool`], the access-control
//!   semiring [`Clearance`]). These are law-checked by unit and property tests and
//!   demonstrate the generality the paper claims for pvc-tables.
//! * **Dynamic value types** ([`SemiringValue`], [`MonoidValue`], [`AggOp`],
//!   [`CmpOp`]) used by the expression, decomposition-tree and relational layers,
//!   where a single table may mix monoids and semirings at run time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monoid;
pub mod polynomial;
pub mod posbool;
pub mod semimodule;
pub mod semiring;
pub mod value;

pub use monoid::{AggOp, CommutativeMonoid, MaxExt, MinExt, ProdNat, SumNat, ALL_AGG_OPS};
pub use polynomial::{Monomial, PolyVar, Polynomial};
pub use posbool::PosBool;
pub use semimodule::{check_semimodule_laws, Semimodule};
pub use semiring::{check_semiring_laws, Clearance, Semiring, Viterbi};
pub use value::{CmpOp, MonoidValue, SemiringKind, SemiringValue};
