//! Commutative semirings for tuple annotations (§2.2, Definition 3 of the paper).
//!
//! Semirings are the canonical algebraic structure for tuple annotations
//! (provenance semirings, Green et al.): annotations from the Boolean semiring yield
//! set semantics, annotations from `N` yield bag semantics, and more exotic semirings
//! (security levels, provenance polynomials) capture richer provenance.
//!
//! The trait [`Semiring`] is the generic formulation; the engine's dynamic values live
//! in [`crate::value`].

use std::fmt;

/// A commutative semiring `(S, +, 0, ·, 1)` (Definition 3 of the paper).
///
/// Laws (checked by property tests in this crate):
/// * `(S, +, 0)` and `(S, ·, 1)` are commutative monoids;
/// * `·` distributes over `+`;
/// * `0` annihilates: `0 · s = s · 0 = 0`.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// The additive neutral element `0_S`.
    fn zero() -> Self;
    /// The multiplicative neutral element `1_S`.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, other: &Self) -> Self;

    /// True if this element equals `0_S`.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// True if this element equals `1_S`.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Sum of an iterator of semiring elements.
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self
    where
        Self: Sized,
    {
        iter.into_iter().fold(Self::zero(), |a, b| a.add(&b))
    }

    /// Product of an iterator of semiring elements.
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self
    where
        Self: Sized,
    {
        iter.into_iter().fold(Self::one(), |a, b| a.mul(&b))
    }
}

/// The Boolean semiring `(B, ∨, ⊥, ∧, ⊤)` — set semantics.
impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn add(&self, other: &Self) -> Self {
        *self || *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self && *other
    }
}

/// The semiring of natural numbers `(N, +, 0, ·, 1)` — bag semantics.
impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
}

/// The probability / Viterbi-style semiring over `[0, 1]` with `max` as addition and
/// `·` as multiplication. Included as an additional concrete semiring exercising the
/// generic machinery (it is *not* how probabilities are computed in this system —
/// exact probabilities come from convolution over distributions, cf. `pvc-prob`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viterbi(pub f64);

impl Semiring for Viterbi {
    fn zero() -> Self {
        Viterbi(0.0)
    }
    fn one() -> Self {
        Viterbi(1.0)
    }
    fn add(&self, other: &Self) -> Self {
        Viterbi(self.0.max(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Viterbi(self.0 * other.0)
    }
}

/// The access-control ("security") semiring mentioned in §2.2: annotations constrain
/// who may see a query result, with `add = min` (most permissive alternative) and
/// `mul = max` (most restrictive joint requirement) over an ordered set of clearance
/// levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Clearance {
    /// Anyone may see the tuple.
    Public,
    /// Confidential clearance required.
    Confidential,
    /// Secret clearance required.
    Secret,
    /// Top-secret clearance required.
    TopSecret,
    /// Nobody may see the tuple (the additive neutral element).
    Never,
}

impl Semiring for Clearance {
    fn zero() -> Self {
        Clearance::Never
    }
    fn one() -> Self {
        Clearance::Public
    }
    fn add(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn mul(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

/// Check all commutative-semiring laws on a triple of sample elements.
///
/// Returns `Err` with a description of the first violated law, which makes property
/// tests and doc examples read naturally.
pub fn check_semiring_laws<S: Semiring>(a: &S, b: &S, c: &S) -> Result<(), String> {
    let err = |law: &str| Err(format!("semiring law violated: {law}"));
    // Additive commutative monoid.
    if a.add(&b.add(c)) != a.add(b).add(c) {
        return err("additive associativity");
    }
    if a.add(b) != b.add(a) {
        return err("additive commutativity");
    }
    if a.add(&S::zero()) != *a || S::zero().add(a) != *a {
        return err("additive identity");
    }
    // Multiplicative commutative monoid.
    if a.mul(&b.mul(c)) != a.mul(b).mul(c) {
        return err("multiplicative associativity");
    }
    if a.mul(b) != b.mul(a) {
        return err("multiplicative commutativity");
    }
    if a.mul(&S::one()) != *a || S::one().mul(a) != *a {
        return err("multiplicative identity");
    }
    // Distributivity and annihilation.
    if a.mul(&b.add(c)) != a.mul(b).add(&a.mul(c)) {
        return err("left distributivity");
    }
    if a.add(b).mul(c) != a.mul(c).add(&b.mul(c)) {
        return err("right distributivity");
    }
    if !a.mul(&S::zero()).is_zero() || !S::zero().mul(a).is_zero() {
        return err("annihilation by zero");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_semiring_laws() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_semiring_laws(&a, &b, &c).unwrap();
                }
            }
        }
    }

    #[test]
    fn natural_semiring_laws() {
        let samples = [0u64, 1, 2, 3, 7, 11];
        for a in samples {
            for b in samples {
                for c in samples {
                    check_semiring_laws(&a, &b, &c).unwrap();
                }
            }
        }
    }

    #[test]
    fn clearance_semiring_laws() {
        use Clearance::*;
        let samples = [Public, Confidential, Secret, TopSecret, Never];
        for a in samples {
            for b in samples {
                for c in samples {
                    check_semiring_laws(&a, &b, &c).unwrap();
                }
            }
        }
    }

    #[test]
    fn clearance_semantics() {
        use Clearance::*;
        // Joint use of a Public and a Secret tuple requires Secret clearance.
        assert_eq!(Public.mul(&Secret), Secret);
        // Alternative derivations take the weaker requirement.
        assert_eq!(Public.add(&Secret), Public);
        // A tuple that can never be seen annihilates joins.
        assert_eq!(Never.mul(&Public), Never);
    }

    #[test]
    fn viterbi_is_a_semiring_on_unit_interval_samples() {
        let samples = [0.0, 0.25, 0.5, 1.0];
        for a in samples {
            for b in samples {
                for c in samples {
                    check_semiring_laws(&Viterbi(a), &Viterbi(b), &Viterbi(c)).unwrap();
                }
            }
        }
    }

    #[test]
    fn sums_and_products() {
        assert_eq!(u64::sum([1, 2, 3]), 6);
        assert_eq!(u64::product([2, 3, 4]), 24);
        assert!(bool::sum([false, false, true]));
        assert!(!bool::product([true, true, false]));
        assert!(u64::sum(std::iter::empty::<u64>()).is_zero());
        assert!(u64::product(std::iter::empty::<u64>()).is_one());
    }
}
