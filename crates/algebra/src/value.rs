//! Dynamic value types used throughout the engine.
//!
//! The paper's representation system mixes two kinds of values:
//!
//! * **Semiring values** — elements of the annotation semiring `S` (the paper uses the
//!   Boolean semiring `B` for set semantics and the natural numbers `N` for bag
//!   semantics, cf. Table 1 of the paper).
//! * **Monoid values** — elements of an aggregation monoid `M`, i.e. the values being
//!   aggregated. MIN and MAX need the extended number line (`±∞` are their neutral
//!   elements), so [`MonoidValue`] models `N ∪ {−∞, +∞}` over `i64`.
//!
//! The engine works with these *dynamic* enums (rather than generics) because a single
//! pvc-table may mix several monoids, and decomposition trees freely mix semiring and
//! semimodule sub-expressions. The generic trait formulation lives in
//! [`crate::semiring`] / [`crate::monoid`] and is law-checked by property tests.

use std::cmp::Ordering;
use std::fmt;

/// Which concrete annotation semiring the engine interprets expressions in.
///
/// `Bool` gives set semantics, `Nat` gives bag semantics (tuple multiplicities); see
/// Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// The Boolean semiring `(B, ∨, ⊥, ∧, ⊤)`.
    Bool,
    /// The semiring of natural numbers `(N, +, 0, ·, 1)`.
    Nat,
}

impl SemiringKind {
    /// The additive neutral element `0_S` of this semiring.
    pub fn zero(self) -> SemiringValue {
        match self {
            SemiringKind::Bool => SemiringValue::Bool(false),
            SemiringKind::Nat => SemiringValue::Nat(0),
        }
    }

    /// The multiplicative neutral element `1_S` of this semiring.
    pub fn one(self) -> SemiringValue {
        match self {
            SemiringKind::Bool => SemiringValue::Bool(true),
            SemiringKind::Nat => SemiringValue::Nat(1),
        }
    }
}

impl fmt::Display for SemiringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiringKind::Bool => write!(f, "B"),
            SemiringKind::Nat => write!(f, "N"),
        }
    }
}

/// An element of a concrete annotation semiring (`B` or `N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SemiringValue {
    /// An element of the Boolean semiring.
    Bool(bool),
    /// An element of the natural-number semiring.
    Nat(u64),
}

impl SemiringValue {
    /// The kind (semiring) this value belongs to.
    pub fn kind(&self) -> SemiringKind {
        match self {
            SemiringValue::Bool(_) => SemiringKind::Bool,
            SemiringValue::Nat(_) => SemiringKind::Nat,
        }
    }

    /// True if this value is the additive neutral element `0_S` of its semiring.
    pub fn is_zero(&self) -> bool {
        matches!(self, SemiringValue::Bool(false) | SemiringValue::Nat(0))
    }

    /// True if this value is the multiplicative neutral element `1_S` of its semiring.
    pub fn is_one(&self) -> bool {
        matches!(self, SemiringValue::Bool(true) | SemiringValue::Nat(1))
    }

    /// Semiring addition. Panics if the operands come from different semirings.
    pub fn add(&self, other: &SemiringValue) -> SemiringValue {
        match (self, other) {
            (SemiringValue::Bool(a), SemiringValue::Bool(b)) => SemiringValue::Bool(*a || *b),
            (SemiringValue::Nat(a), SemiringValue::Nat(b)) => SemiringValue::Nat(a + b),
            _ => panic!("semiring kind mismatch in add: {self:?} + {other:?}"),
        }
    }

    /// Semiring multiplication. Panics if the operands come from different semirings.
    pub fn mul(&self, other: &SemiringValue) -> SemiringValue {
        match (self, other) {
            (SemiringValue::Bool(a), SemiringValue::Bool(b)) => SemiringValue::Bool(*a && *b),
            (SemiringValue::Nat(a), SemiringValue::Nat(b)) => SemiringValue::Nat(a * b),
            _ => panic!("semiring kind mismatch in mul: {self:?} * {other:?}"),
        }
    }

    /// Interpret this value as a natural number multiplicity.
    ///
    /// Booleans map to `0`/`1`; this is the canonical semiring homomorphism `B → N`
    /// used when applying a semiring value to a monoid value (`⊗`).
    pub fn as_multiplicity(&self) -> u64 {
        match self {
            SemiringValue::Bool(false) => 0,
            SemiringValue::Bool(true) => 1,
            SemiringValue::Nat(n) => *n,
        }
    }

    /// The Boolean truth value of this element (non-zero ⇒ true).
    pub fn as_bool(&self) -> bool {
        !self.is_zero()
    }
}

impl fmt::Display for SemiringValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiringValue::Bool(true) => write!(f, "⊤"),
            SemiringValue::Bool(false) => write!(f, "⊥"),
            SemiringValue::Nat(n) => write!(f, "{n}"),
        }
    }
}

impl From<bool> for SemiringValue {
    fn from(b: bool) -> Self {
        SemiringValue::Bool(b)
    }
}

impl From<u64> for SemiringValue {
    fn from(n: u64) -> Self {
        SemiringValue::Nat(n)
    }
}

/// An element of an aggregation monoid: the extended integers `Z ∪ {−∞, +∞}`.
///
/// `+∞` is the neutral element of MIN and `−∞` the neutral element of MAX
/// (cf. §2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonoidValue {
    /// Negative infinity — neutral element of the MAX monoid.
    NegInf,
    /// A finite value.
    Fin(i64),
    /// Positive infinity — neutral element of the MIN monoid.
    PosInf,
}

impl MonoidValue {
    /// The finite payload, if any.
    pub fn finite(&self) -> Option<i64> {
        match self {
            MonoidValue::Fin(v) => Some(*v),
            _ => None,
        }
    }

    /// True if this is a finite value.
    pub fn is_finite(&self) -> bool {
        matches!(self, MonoidValue::Fin(_))
    }

    /// Saturating addition on the extended number line.
    ///
    /// `−∞ + +∞` is undefined in general; this implementation panics on that case
    /// because it never arises from well-formed aggregation expressions (SUM only
    /// combines finite values).
    pub fn saturating_add(&self, other: &MonoidValue) -> MonoidValue {
        match (self, other) {
            (MonoidValue::Fin(a), MonoidValue::Fin(b)) => MonoidValue::Fin(a + b),
            (MonoidValue::PosInf, MonoidValue::NegInf)
            | (MonoidValue::NegInf, MonoidValue::PosInf) => {
                panic!("undefined sum of +∞ and −∞")
            }
            (MonoidValue::PosInf, _) | (_, MonoidValue::PosInf) => MonoidValue::PosInf,
            (MonoidValue::NegInf, _) | (_, MonoidValue::NegInf) => MonoidValue::NegInf,
        }
    }

    /// Multiplication on the extended number line (used by the PROD monoid).
    pub fn saturating_mul(&self, other: &MonoidValue) -> MonoidValue {
        match (self, other) {
            (MonoidValue::Fin(a), MonoidValue::Fin(b)) => MonoidValue::Fin(a * b),
            _ => panic!("PROD aggregation over infinite values is undefined"),
        }
    }
}

impl PartialOrd for MonoidValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MonoidValue {
    fn cmp(&self, other: &Self) -> Ordering {
        use MonoidValue::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) => Ordering::Less,
            (_, NegInf) => Ordering::Greater,
            (PosInf, _) => Ordering::Greater,
            (_, PosInf) => Ordering::Less,
            (Fin(a), Fin(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for MonoidValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonoidValue::NegInf => write!(f, "-∞"),
            MonoidValue::Fin(v) => write!(f, "{v}"),
            MonoidValue::PosInf => write!(f, "+∞"),
        }
    }
}

impl From<i64> for MonoidValue {
    fn from(v: i64) -> Self {
        MonoidValue::Fin(v)
    }
}

/// A comparison operator `θ` used in conditional expressions `[α θ β]` (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality `=`.
    Eq,
    /// Inequality `≠`.
    Ne,
    /// Less-or-equal `≤`.
    Le,
    /// Greater-or-equal `≥`.
    Ge,
    /// Strictly less `<`.
    Lt,
    /// Strictly greater `>`.
    Gt,
}

impl CmpOp {
    /// Evaluate the comparison on two ordered values.
    pub fn eval<T: Ord>(&self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
        }
    }

    /// The operator with the two sides swapped (`a θ b` ⇔ `b θ.flip() a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
        }
    }

    /// The logical negation of the operator (`¬(a θ b)` ⇔ `a θ.negate() b`).
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Le => "≤",
            CmpOp::Ge => "≥",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semiring_bool_ops() {
        let t = SemiringValue::Bool(true);
        let f = SemiringValue::Bool(false);
        assert_eq!(t.add(&f), t);
        assert_eq!(f.add(&f), f);
        assert_eq!(t.mul(&f), f);
        assert_eq!(t.mul(&t), t);
        assert!(f.is_zero());
        assert!(t.is_one());
        assert_eq!(SemiringKind::Bool.zero(), f);
        assert_eq!(SemiringKind::Bool.one(), t);
    }

    #[test]
    fn semiring_nat_ops() {
        let a = SemiringValue::Nat(3);
        let b = SemiringValue::Nat(4);
        assert_eq!(a.add(&b), SemiringValue::Nat(7));
        assert_eq!(a.mul(&b), SemiringValue::Nat(12));
        assert!(SemiringValue::Nat(0).is_zero());
        assert!(SemiringValue::Nat(1).is_one());
        assert_eq!(SemiringKind::Nat.zero(), SemiringValue::Nat(0));
        assert_eq!(SemiringKind::Nat.one(), SemiringValue::Nat(1));
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn mixed_kind_add_panics() {
        SemiringValue::Bool(true).add(&SemiringValue::Nat(1));
    }

    #[test]
    fn multiplicity_homomorphism() {
        // B → N is a semiring homomorphism on {⊥, ⊤}.
        let pairs = [(false, false), (false, true), (true, true)];
        for (a, b) in pairs {
            let (sa, sb) = (SemiringValue::Bool(a), SemiringValue::Bool(b));
            assert_eq!(
                sa.add(&sb).as_multiplicity(),
                (sa.as_multiplicity() + sb.as_multiplicity()).min(1)
            );
            assert_eq!(
                sa.mul(&sb).as_multiplicity(),
                sa.as_multiplicity() * sb.as_multiplicity()
            );
        }
    }

    #[test]
    fn monoid_value_ordering() {
        assert!(MonoidValue::NegInf < MonoidValue::Fin(i64::MIN));
        assert!(MonoidValue::Fin(i64::MAX) < MonoidValue::PosInf);
        assert!(MonoidValue::Fin(3) < MonoidValue::Fin(4));
        assert_eq!(
            MonoidValue::PosInf.cmp(&MonoidValue::PosInf),
            Ordering::Equal
        );
    }

    #[test]
    fn monoid_value_saturating_add() {
        assert_eq!(
            MonoidValue::Fin(2).saturating_add(&MonoidValue::Fin(5)),
            MonoidValue::Fin(7)
        );
        assert_eq!(
            MonoidValue::PosInf.saturating_add(&MonoidValue::Fin(5)),
            MonoidValue::PosInf
        );
        assert_eq!(
            MonoidValue::NegInf.saturating_add(&MonoidValue::Fin(5)),
            MonoidValue::NegInf
        );
    }

    #[test]
    #[should_panic(expected = "undefined sum")]
    fn opposite_infinities_panic() {
        MonoidValue::PosInf.saturating_add(&MonoidValue::NegInf);
    }

    #[test]
    fn cmp_op_eval_flip_negate() {
        assert!(CmpOp::Le.eval(&1, &2));
        assert!(!CmpOp::Gt.eval(&1, &2));
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Le,
            CmpOp::Ge,
            CmpOp::Lt,
            CmpOp::Gt,
        ] {
            for a in -2..3i64 {
                for b in -2..3i64 {
                    assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a), "{op:?} {a} {b}");
                    assert_eq!(op.eval(&a, &b), !op.negate().eval(&a, &b), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(SemiringValue::Bool(true).to_string(), "⊤");
        assert_eq!(SemiringValue::Nat(7).to_string(), "7");
        assert_eq!(MonoidValue::PosInf.to_string(), "+∞");
        assert_eq!(MonoidValue::Fin(-3).to_string(), "-3");
        assert_eq!(CmpOp::Le.to_string(), "≤");
    }
}
