//! Joint probability distributions of several expressions (§5, "Compiling Joint
//! Probability Distributions").
//!
//! A result tuple of an aggregate query may carry several semimodule expressions
//! (several aggregation columns) plus a conditional annotation; their *joint*
//! distribution is needed e.g. to answer "what is the probability that the SUM is 100
//! and the COUNT is 3", or to derive an AVG distribution from SUM and COUNT. The
//! compilation strategy follows the paper: apply mutually exclusive case splits until
//! the expressions become pairwise independent, at which point the joint distribution
//! is the product of the individual distributions.

use crate::compile::compile_semimodule;
use pvc_algebra::{MonoidValue, SemiringKind};
use pvc_expr::independence::all_independent;
use pvc_expr::{SemimoduleExpr, Var, VarSet, VarTable};
use pvc_prob::Dist;
use std::collections::BTreeMap;

/// The joint distribution of a vector of semimodule expressions, as a distribution
/// over value vectors (one entry per input expression, in order).
pub fn joint_distribution(
    exprs: &[SemimoduleExpr],
    table: &VarTable,
    kind: SemiringKind,
) -> Dist<Vec<MonoidValue>> {
    let simplified: Vec<SemimoduleExpr> = exprs.iter().map(|e| e.simplify(kind)).collect();
    joint_rec(&simplified, table, kind, 0)
}

fn joint_rec(
    exprs: &[SemimoduleExpr],
    table: &VarTable,
    kind: SemiringKind,
    depth: usize,
) -> Dist<Vec<MonoidValue>> {
    assert!(
        depth <= table.len() + 1,
        "joint compilation exceeded the number of variables — this is a bug"
    );
    let var_sets: Vec<VarSet> = exprs.iter().map(|e| e.vars()).collect();
    if all_independent(&var_sets) {
        // Independent expressions: the joint distribution is the product measure.
        let mut acc: Dist<Vec<MonoidValue>> = Dist::point(Vec::new());
        for e in exprs {
            let tree = compile_semimodule(e, table, kind);
            let dist = tree
                .monoid_distribution(table, kind)
                .expect("compiled semimodule tree yields monoid values");
            acc = acc.convolve(&dist, |prefix, v| {
                let mut next = prefix.clone();
                next.push(*v);
                next
            });
        }
        return acc;
    }
    // Mutually exclusive case split on the most frequently shared variable.
    let var = choose_shared_var(exprs);
    let dist = table.dist(var).clone();
    let mut acc = Dist::empty();
    for (value, p) in dist.iter() {
        let substituted: Vec<SemimoduleExpr> = exprs
            .iter()
            .map(|e| e.substitute_simplify(var, *value, kind))
            .collect();
        let branch = joint_rec(&substituted, table, kind, depth + 1);
        acc = acc.mix(&branch.scale(p));
    }
    acc
}

/// Choose the variable occurring in the largest number of distinct expressions
/// (ties broken by total occurrence count, then id).
fn choose_shared_var(exprs: &[SemimoduleExpr]) -> Var {
    let mut in_exprs: BTreeMap<Var, usize> = BTreeMap::new();
    let mut occurrences: BTreeMap<Var, usize> = BTreeMap::new();
    for e in exprs {
        for v in e.vars().iter() {
            *in_exprs.entry(v).or_insert(0) += 1;
        }
        e.count_occurrences(&mut occurrences);
    }
    *in_exprs
        .iter()
        .max_by_key(|(v, n)| {
            (
                **n,
                occurrences.get(v).copied().unwrap_or(0),
                std::cmp::Reverse(v.0),
            )
        })
        .map(|(v, _)| v)
        .expect("joint compilation requires at least one variable")
}

/// The distribution of the ratio of two jointly-distributed expressions (an AVG-style
/// derived aggregate: `numerator / denominator`), expressed over pairs to avoid
/// introducing non-integer values. Entries with denominator equal to `zero_denom` are
/// reported under `None`.
pub fn ratio_distribution(
    numerator: &SemimoduleExpr,
    denominator: &SemimoduleExpr,
    table: &VarTable,
    kind: SemiringKind,
) -> Dist<Option<(i64, i64)>> {
    let joint = joint_distribution(&[numerator.clone(), denominator.clone()], table, kind);
    joint.map(|pair| {
        let (num, den) = (pair[0], pair[1]);
        match (num.finite(), den.finite()) {
            (Some(n), Some(d)) if d != 0 => Some((n, d)),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, MonoidValue::Fin};
    use pvc_expr::oracle::joint_dist_by_enumeration;
    use pvc_expr::SemiringExpr;

    fn v(x: Var) -> SemiringExpr {
        SemiringExpr::Var(x)
    }

    #[test]
    fn independent_expressions_multiply() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.25);
        let e1 = SemimoduleExpr::tensor(AggOp::Sum, v(a), Fin(10));
        let e2 = SemimoduleExpr::tensor(AggOp::Sum, v(b), Fin(20));
        let joint = joint_distribution(&[e1.clone(), e2.clone()], &vt, SemiringKind::Bool);
        assert!((joint.prob(&vec![Fin(10), Fin(20)]) - 0.125).abs() < 1e-12);
        let oracle = joint_dist_by_enumeration(&[e1, e2], &vt, SemiringKind::Bool);
        assert!(joint.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn paper_example_shared_variable() {
        // §5: integer variables a, b, c over {1,2}; joint of ⟨a+b, a·c⟩;
        // P[⟨3,2⟩] = Pa[2]Pb[1]Pc[1] + Pa[1]Pb[2]Pc[2].
        let mut vt = VarTable::new();
        let pa = 0.4;
        let pb = 0.7;
        let pc = 0.2;
        let a = vt.natural("a", &[(1, pa), (2, 1.0 - pa)]);
        let b = vt.natural("b", &[(1, pb), (2, 1.0 - pb)]);
        let c = vt.natural("c", &[(1, pc), (2, 1.0 - pc)]);
        // Encode a+b and a·c as SUM semimodule expressions over the Nat semiring:
        // (a+b) ⊗ 1 and (a·c) ⊗ 1 under SUM give exactly the integer values.
        let e1 = SemimoduleExpr::tensor(AggOp::Sum, v(a) + v(b), Fin(1));
        let e2 = SemimoduleExpr::tensor(AggOp::Sum, v(a) * v(c), Fin(1));
        let joint = joint_distribution(&[e1.clone(), e2.clone()], &vt, SemiringKind::Nat);
        let expected = (1.0 - pa) * pb * pc + pa * (1.0 - pb) * (1.0 - pc);
        assert!((joint.prob(&vec![Fin(3), Fin(2)]) - expected).abs() < 1e-9);
        let oracle = joint_dist_by_enumeration(&[e1, e2], &vt, SemiringKind::Nat);
        assert!(joint.approx_eq(&oracle, 1e-9));
    }

    #[test]
    fn sum_and_count_joint_for_avg() {
        // Three optional readings; AVG = SUM / COUNT.
        let mut vt = VarTable::new();
        let xs: Vec<Var> = (0..3).map(|i| vt.boolean(format!("x{i}"), 0.5)).collect();
        let values = [10, 20, 30];
        let sum = SemimoduleExpr::from_terms(
            AggOp::Sum,
            xs.iter()
                .zip(values)
                .map(|(x, w)| (v(*x), Fin(w)))
                .collect(),
        );
        let count =
            SemimoduleExpr::from_terms(AggOp::Count, xs.iter().map(|x| (v(*x), Fin(1))).collect());
        let joint = joint_distribution(&[sum.clone(), count.clone()], &vt, SemiringKind::Bool);
        let oracle =
            joint_dist_by_enumeration(&[sum.clone(), count.clone()], &vt, SemiringKind::Bool);
        assert!(joint.approx_eq(&oracle, 1e-9));
        // Derived AVG distribution: P[avg = 20] = P[(20,1)] + P[(40,2)] + P[(60,3)].
        let ratio = ratio_distribution(&sum, &count, &vt, SemiringKind::Bool);
        let p_avg20: f64 = ratio
            .iter()
            .filter(|(v, _)| matches!(v, Some((n, d)) if *d != 0 && n / d == 20 && n % d == 0))
            .map(|(_, p)| p)
            .sum();
        // Exact: {x1}, {x0,x2}, {x0,x1,x2} ⇒ 0.125 + 0.125 + 0.125.
        assert!((p_avg20 - 0.375).abs() < 1e-9);
        // Empty group has no average.
        assert!((ratio.prob(&None) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn joint_of_single_expression_matches_marginal() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.3);
        let b = vt.boolean("b", 0.9);
        let e = SemimoduleExpr::from_terms(AggOp::Min, vec![(v(a), Fin(10)), (v(b), Fin(20))]);
        let joint = joint_distribution(std::slice::from_ref(&e), &vt, SemiringKind::Bool);
        let marginal = compile_semimodule(&e, &vt, SemiringKind::Bool)
            .monoid_distribution(&vt, SemiringKind::Bool)
            .unwrap();
        for (value, p) in marginal.iter() {
            assert!((joint.prob(&vec![*value]) - p).abs() < 1e-9);
        }
    }
}
