//! # Observability: metrics registry, span tracing and execution profiles
//!
//! A zero-dependency observability subsystem shared by every layer of the
//! engine (re-exported as `pvc_suite::obs`). Three coordinated pieces:
//!
//! 1. **[`MetricsRegistry`]** — a process-wide registry of named [`Counter`]s,
//!    [`Gauge`]s and log-bucketed [`Histogram`]s. Registration (name → handle)
//!    takes a lock; the handles themselves touch only atomics, and every
//!    `inc`/`record` call first checks a shared *enabled* flag with one relaxed
//!    load, so a disabled registry costs nothing measurable on the hot path.
//!    Counters are sharded across cache-line-padded cells to avoid write
//!    contention from the worker pool.
//! 2. **[`Trace`] / [`SpanGuard`]** — lightweight span tracing with monotonic
//!    clocks, RAII finish, and a bounded ring buffer of finished spans that
//!    drops the oldest entries instead of growing. A trace is installed
//!    per-thread with [`with_trace`]; instrumented code opens spans with
//!    [`span`], which is a near-no-op when no trace is installed and global
//!    tracing is off.
//! 3. **[`ExecutionProfile`]** — a per-query span tree assembled by the engine
//!    when `EvalOptions::profile` is set, with a human-readable
//!    [`render`](ExecutionProfile::render) and a duration-free
//!    [`shape`](ExecutionProfile::shape) that is deterministic (so tests can
//!    pin it across runs and thread counts).
//!
//! ## Modes
//!
//! * **Disabled** (default): every instrumentation site reduces to a relaxed
//!   atomic or thread-local flag check. Results are bit-identical to an
//!   uninstrumented build; the bench regression gate enforces the overhead
//!   bound (`PVC_MAX_OBS_OVERHEAD_RATIO`).
//! * **Metrics only** ([`set_metrics_enabled`]): counters/gauges/histograms
//!   accumulate; no spans are recorded.
//! * **Full tracing** ([`set_tracing_enabled`], implies metrics for the span
//!   counters to land anywhere): every [`span`] site additionally increments a
//!   `span.<name>` counter, so long-running servers expose lifecycle activity
//!   without allocating traces.
//!
//! `pvc_prob` sits below this crate and keeps its own kernel-dispatch atomics
//! (`pvc_prob::stats`); [`snapshot`] bridges them into the `kernel.*` metric
//! names so one JSON document covers every layer. See `docs/OBSERVABILITY.md`
//! for the full metric-name catalog and the span hierarchy.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Shards per counter; writers pick a cache-line-padded cell by a sticky
/// per-thread id, so pool workers do not contend on one atomic.
const COUNTER_SHARDS: usize = 8;

/// Histogram buckets: bucket 0 holds the value 0, bucket `b > 0` holds values
/// in `[2^(b-1), 2^b − 1]`, and the last bucket absorbs everything larger.
const HIST_BUCKETS: usize = 65;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedCell(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard_id() -> usize {
    SHARD.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            id = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            s.set(id);
        }
        id % COUNTER_SHARDS
    })
}

#[derive(Debug)]
struct CounterCore {
    enabled: Arc<AtomicBool>,
    shards: [PaddedCell; COUNTER_SHARDS],
}

/// A monotonically increasing, sharded atomic counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Add 1 (no-op while the owning registry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (no-op while the owning registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.shards[shard_id()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for cell in &self.0.shards {
            cell.0.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct GaugeCore {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
    hwm: AtomicU64,
}

/// A last-value gauge that also tracks its high-water mark.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// Set the current value and raise the high-water mark if exceeded.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.value.store(v, Ordering::Relaxed);
            self.0.hwm.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Last value set.
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn hwm(&self) -> u64 {
        self.0.hwm.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.value.store(0, Ordering::Relaxed);
        self.0.hwm.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct HistogramCore {
    enabled: Arc<AtomicBool>,
    buckets: Vec<AtomicU64>, // HIST_BUCKETS cells
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free histogram with power-of-two (log2) buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

fn hist_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a log2 bucket index.
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Record one sample (no-op while the owning registry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics sharing one enabled flag.
///
/// Registration takes a lock (cold path); recording through the returned
/// handles is lock-free. The process-wide instance is [`global`]; separate
/// instances can be created for tests.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, disabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(false)),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Enable or disable recording for every handle of this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter(Arc::new(CounterCore {
                enabled: Arc::clone(&self.enabled),
                shards: std::array::from_fn(|_| PaddedCell(AtomicU64::new(0))),
            })))
        });
        match entry {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge(Arc::new(GaugeCore {
                enabled: Arc::clone(&self.enabled),
                value: AtomicU64::new(0),
                hwm: AtomicU64::new(0),
            })))
        });
        match entry {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                enabled: Arc::clone(&self.enabled),
                buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Zero every registered metric (handles stay valid).
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), (g.value(), g.hwm()));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty log2 buckets as `(inclusive_upper_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of a [`MetricsRegistry`] (plus, for [`snapshot`], the
/// bridged `kernel.*` statistics from `pvc_prob`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name as `(value, high_water_mark)`.
    pub gauges: BTreeMap<String, (u64, u64)>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl MetricsSnapshot {
    /// Serialise in the bench-baseline JSON dialect.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", json_escape(name), value));
        }
        out.push_str("}, \"gauges\": {");
        first = true;
        for (name, (value, hwm)) in &self.gauges {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{}\": {{\"value\": {}, \"hwm\": {}}}",
                json_escape(name),
                value,
                hwm
            ));
        }
        out.push_str("}, \"histograms\": {");
        first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let buckets: Vec<String> = hist
                .buckets
                .iter()
                .map(|(le, n)| format!("[{le}, {n}]"))
                .collect();
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                hist.count,
                hist.sum,
                buckets.join(", ")
            ));
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry that all built-in instrumentation records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Enable or disable the global metrics registry **and** the `pvc_prob`
/// kernel-dispatch statistics it bridges.
pub fn set_metrics_enabled(enabled: bool) {
    global().set_enabled(enabled);
    pvc_prob::set_kernel_stats_enabled(enabled);
}

/// Whether the global metrics registry is enabled.
pub fn metrics_enabled() -> bool {
    global().enabled()
}

static TRACING: AtomicBool = AtomicBool::new(false);

/// Enable or disable global span-counting mode ("full tracing"). While on,
/// every [`span`] site increments a `span.<name>` counter in the global
/// registry — enable metrics too, or the counts are dropped.
pub fn set_tracing_enabled(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether global span-counting mode is on.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Zero the global registry and the bridged kernel statistics.
pub fn reset() {
    global().reset();
    pvc_prob::reset_kernel_stats();
}

/// Snapshot the global registry, bridging in the `kernel.*` statistics kept by
/// `pvc_prob` (which cannot depend on this crate).
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = global().snapshot();
    let kernel = pvc_prob::kernel_stats();
    snap.counters
        .insert("kernel.conv.dense".into(), kernel.conv_dense);
    snap.counters
        .insert("kernel.conv.sparse".into(), kernel.conv_sparse);
    snap.counters
        .insert("kernel.conv.fft".into(), kernel.conv_fft);
    snap.counters
        .insert("kernel.fft.fallbacks".into(), kernel.fft_fallbacks);
    snap.counters.insert(
        "kernel.dense_chain.extends".into(),
        kernel.dense_chain_extends,
    );
    snap.counters.insert(
        "kernel.dense_chain.breaks".into(),
        kernel.dense_chain_breaks,
    );
    snap.counters
        .insert("kernel.repr.dense".into(), kernel.repr_dense);
    snap.counters
        .insert("kernel.repr.sparse".into(), kernel.repr_sparse);
    let buckets = kernel
        .support_buckets
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| (bucket_upper_bound(i), n))
        .collect();
    snap.histograms.insert(
        "kernel.conv.support".into(),
        HistogramSnapshot {
            count: kernel.support_count,
            sum: kernel.support_sum,
            buckets,
        },
    );
    snap
}

/// [`snapshot`] serialised in the bench-baseline JSON dialect.
pub fn metrics_json() -> String {
    snapshot().to_json()
}

// ---------------------------------------------------------------------------
// Pre-registered handles for this crate's instrumentation
// ---------------------------------------------------------------------------

/// Handles for the metrics recorded by `pvc-core` itself (cache, arena, pool,
/// persist), resolved once against the [`global`] registry.
#[derive(Debug)]
pub struct CoreMetrics {
    /// `cache.semiring.hit`
    pub cache_semiring_hit: Counter,
    /// `cache.semiring.miss`
    pub cache_semiring_miss: Counter,
    /// `cache.aggregate.hit`
    pub cache_aggregate_hit: Counter,
    /// `cache.aggregate.miss`
    pub cache_aggregate_miss: Counter,
    /// `cache.arena.hit`
    pub cache_arena_hit: Counter,
    /// `cache.arena.miss`
    pub cache_arena_miss: Counter,
    /// `cache.eviction`
    pub cache_eviction: Counter,
    /// `arena.nodes` — d-tree arena sizes at build time.
    pub arena_nodes: Histogram,
    /// `arena.eval.stack_depth` — evaluator value-stack high-water marks.
    pub eval_stack_depth: Histogram,
    /// `pool.queue_wait_us` — enqueue-to-start wait per pool job.
    pub pool_queue_wait_us: Histogram,
    /// `pool.run_us` — run time per pool job.
    pub pool_run_us: Histogram,
    /// `persist.save.bytes`
    pub persist_save_bytes: Histogram,
    /// `persist.save.us`
    pub persist_save_us: Histogram,
    /// `persist.restore.bytes`
    pub persist_restore_bytes: Histogram,
    /// `persist.restore.us`
    pub persist_restore_us: Histogram,
    /// `persist.wal.append.bytes` — framed record sizes appended to the WAL.
    pub wal_append_bytes: Histogram,
    /// `persist.wal.append.us` — append latency including any fsync.
    pub wal_append_us: Histogram,
    /// `persist.wal.replayed` — records recovered from WAL files at open.
    pub wal_replayed_records: Counter,
    /// `persist.wal.torn_tails` — WAL opens that found (and amputated) a torn
    /// or corrupt tail.
    pub wal_torn_tails: Counter,
    /// `persist.wal.rotations` — post-snapshot log rotations.
    pub wal_rotations: Counter,
}

/// The lazily-registered [`CoreMetrics`] handles.
pub fn core_metrics() -> &'static CoreMetrics {
    static CORE: OnceLock<CoreMetrics> = OnceLock::new();
    CORE.get_or_init(|| {
        let r = global();
        CoreMetrics {
            cache_semiring_hit: r.counter("cache.semiring.hit"),
            cache_semiring_miss: r.counter("cache.semiring.miss"),
            cache_aggregate_hit: r.counter("cache.aggregate.hit"),
            cache_aggregate_miss: r.counter("cache.aggregate.miss"),
            cache_arena_hit: r.counter("cache.arena.hit"),
            cache_arena_miss: r.counter("cache.arena.miss"),
            cache_eviction: r.counter("cache.eviction"),
            arena_nodes: r.histogram("arena.nodes"),
            eval_stack_depth: r.histogram("arena.eval.stack_depth"),
            pool_queue_wait_us: r.histogram("pool.queue_wait_us"),
            pool_run_us: r.histogram("pool.run_us"),
            persist_save_bytes: r.histogram("persist.save.bytes"),
            persist_save_us: r.histogram("persist.save.us"),
            persist_restore_bytes: r.histogram("persist.restore.bytes"),
            persist_restore_us: r.histogram("persist.restore.us"),
            wal_append_bytes: r.histogram("persist.wal.append.bytes"),
            wal_append_us: r.histogram("persist.wal.append.us"),
            wal_replayed_records: r.counter("persist.wal.replayed"),
            wal_torn_tails: r.counter("persist.wal.torn_tails"),
            wal_rotations: r.counter("persist.wal.rotations"),
        }
    })
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// Every span name used by the built-in instrumentation, in lifecycle order.
pub const SPAN_NAMES: &[&str] = &[
    "prepare",
    "query",
    "rewrite",
    "evaluate",
    "tuple",
    "confidence",
    "aggregate",
    "intern",
    "subtree",
    "compile",
];

fn span_counters() -> &'static Vec<(&'static str, Counter)> {
    static COUNTERS: OnceLock<Vec<(&'static str, Counter)>> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        SPAN_NAMES
            .iter()
            .map(|&name| (name, global().counter(&format!("span.{name}"))))
            .collect()
    })
}

fn count_span(name: &'static str) {
    if let Some((_, counter)) = span_counters().iter().find(|(n, _)| *n == name) {
        counter.inc();
    }
}

/// One finished span copied out of a [`Trace`].
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Start-order sequence number, unique within the trace.
    pub seq: usize,
    /// Sequence number of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Static span name (one of [`SPAN_NAMES`] for built-in sites).
    pub name: &'static str,
    /// Key/value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, String)>,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
}

#[derive(Debug)]
struct OpenSpan {
    seq: usize,
    parent: Option<usize>,
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    start: Instant,
}

#[derive(Debug, Default)]
struct TraceInner {
    next_seq: usize,
    open: Vec<OpenSpan>,
    finished: VecDeque<FinishedSpan>,
    dropped: u64,
}

/// A single-threaded span collector with a bounded ring of finished spans.
///
/// Not `Sync`: one trace belongs to one thread (install it with
/// [`with_trace`]). When the ring is full the **oldest** finished span is
/// dropped and counted in [`dropped`](Trace::dropped) — tracing never panics
/// or grows without bound.
#[derive(Debug)]
pub struct Trace {
    cap: usize,
    inner: RefCell<TraceInner>,
}

/// Default capacity of a trace's finished-span ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl Trace {
    /// A trace whose finished-span ring holds at most `capacity` spans
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            cap: capacity.max(1),
            inner: RefCell::new(TraceInner::default()),
        }
    }

    /// Open a span; the most recently opened unfinished span becomes its
    /// parent. Returns the span's sequence number.
    pub fn start(&self, name: &'static str) -> usize {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let parent = inner.open.last().map(|s| s.seq);
        inner.open.push(OpenSpan {
            seq,
            parent,
            name,
            attrs: Vec::new(),
            start: Instant::now(),
        });
        seq
    }

    /// Attach an attribute to the open span `seq` (no-op if already finished).
    pub fn attr(&self, seq: usize, key: &'static str, value: String) {
        let mut inner = self.inner.borrow_mut();
        if let Some(span) = inner.open.iter_mut().rev().find(|s| s.seq == seq) {
            span.attrs.push((key, value));
        }
    }

    /// Finish the open span `seq`, moving it into the bounded ring. Finishing
    /// an unknown or already-finished span is a no-op.
    pub fn finish(&self, seq: usize) {
        let mut inner = self.inner.borrow_mut();
        let Some(pos) = inner.open.iter().rposition(|s| s.seq == seq) else {
            return;
        };
        let span = inner.open.remove(pos);
        let dur_ns = span.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        inner.finished.push_back(FinishedSpan {
            seq: span.seq,
            parent: span.parent,
            name: span.name,
            attrs: span.attrs,
            dur_ns,
        });
        if inner.finished.len() > self.cap {
            inner.finished.pop_front();
            inner.dropped += 1;
        }
    }

    /// Copy out the finished spans, in finish order.
    pub fn spans(&self) -> Vec<FinishedSpan> {
        self.inner.borrow().finished.iter().cloned().collect()
    }

    /// Number of finished spans currently held.
    pub fn len(&self) -> usize {
        self.inner.borrow().finished.len()
    }

    /// True when no finished span is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finished spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }
}

/// RAII handle for an open span: finishes it on drop.
#[derive(Debug)]
pub struct SpanGuard {
    trace: Rc<Trace>,
    seq: usize,
}

impl SpanGuard {
    /// Attach a key/value attribute to this span.
    pub fn attr(&self, key: &'static str, value: String) {
        self.trace.attr(self.seq, key, value);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.trace.finish(self.seq);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Trace>>> = const { RefCell::new(None) };
    static HAS_TRACE: Cell<bool> = const { Cell::new(false) };
}

/// Install `trace` as this thread's current trace for the duration of `f`;
/// [`span`] calls made inside (at any depth) record into it. The previous
/// trace, if any, is restored afterwards — even on unwind.
pub fn with_trace<R>(trace: Rc<Trace>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Rc<Trace>>, bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
            HAS_TRACE.with(|h| h.set(self.1));
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(trace));
    let prev_flag = HAS_TRACE.with(|h| h.replace(true));
    let _restore = Restore(prev, prev_flag);
    f()
}

/// Open a span named `name` in this thread's current trace.
///
/// Near-free when observability is off: one thread-local flag read plus one
/// relaxed atomic load. Returns `None` (and records nothing) when no trace is
/// installed; if global tracing mode is on, the `span.<name>` counter is
/// incremented either way.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    let has_trace = HAS_TRACE.with(Cell::get);
    let tracing = TRACING.load(Ordering::Relaxed);
    if !has_trace && !tracing {
        return None;
    }
    if tracing {
        count_span(name);
    }
    if !has_trace {
        return None;
    }
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let trace = borrow.as_ref()?;
        let seq = trace.start(name);
        Some(SpanGuard {
            trace: Rc::clone(trace),
            seq,
        })
    })
}

// ---------------------------------------------------------------------------
// Execution profiles
// ---------------------------------------------------------------------------

/// One node of a profile tree: a span with its attributes, duration and
/// children (in span-start order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Attributes attached to the span.
    pub attrs: Vec<(String, String)>,
    /// Duration in nanoseconds. Excluded from [`ExecutionProfile::shape`].
    pub dur_ns: u64,
    /// Child spans in start order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A node with no attributes or children.
    pub fn new(name: impl Into<String>) -> ProfileNode {
        ProfileNode {
            name: name.into(),
            attrs: Vec::new(),
            dur_ns: 0,
            children: Vec::new(),
        }
    }

    fn render_into(&self, depth: usize, with_durations: bool, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if !self.attrs.is_empty() {
            out.push_str(" [");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push(']');
        }
        if with_durations {
            out.push_str(&format!(" ({:.3}ms)", self.dur_ns as f64 / 1e6));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, with_durations, out);
        }
    }
}

/// The span tree of one query execution, attached to `QueryResult` when
/// `EvalOptions::profile` is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProfile {
    /// The root span (named `query`).
    pub root: ProfileNode,
    /// Spans lost to per-tuple ring-buffer overflow across the execution.
    pub dropped_spans: u64,
}

impl ExecutionProfile {
    /// Human-readable indented tree **with** durations (not deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, true, &mut out);
        if self.dropped_spans > 0 {
            out.push_str(&format!("({} spans dropped)\n", self.dropped_spans));
        }
        out
    }

    /// The same tree **without** durations: deterministic across runs and
    /// thread counts (given identical cache state), so tests can pin it.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, false, &mut out);
        if self.dropped_spans > 0 {
            out.push_str(&format!("({} spans dropped)\n", self.dropped_spans));
        }
        out
    }
}

/// Assemble a trace's finished spans into root [`ProfileNode`]s (children in
/// span-start order). Spans whose parents were evicted from the ring become
/// roots themselves; the second value is the trace's dropped-span count.
pub fn profile_nodes(trace: &Trace) -> (Vec<ProfileNode>, u64) {
    let spans = trace.spans();
    let mut by_seq: BTreeMap<usize, &FinishedSpan> = BTreeMap::new();
    for span in &spans {
        by_seq.insert(span.seq, span);
    }
    // Children grouped by parent, in start (seq) order thanks to the BTreeMap.
    let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (&seq, span) in &by_seq {
        match span.parent {
            Some(parent) if by_seq.contains_key(&parent) => {
                children.entry(parent).or_default().push(seq);
            }
            _ => roots.push(seq),
        }
    }
    fn build(
        seq: usize,
        by_seq: &BTreeMap<usize, &FinishedSpan>,
        children: &BTreeMap<usize, Vec<usize>>,
    ) -> ProfileNode {
        let span = by_seq[&seq];
        ProfileNode {
            name: span.name.to_string(),
            attrs: span
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            dur_ns: span.dur_ns,
            children: children
                .get(&seq)
                .map(|kids| {
                    kids.iter()
                        .map(|&kid| build(kid, by_seq, children))
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
    let nodes = roots
        .into_iter()
        .map(|seq| build(seq, &by_seq, &children))
        .collect();
    (nodes, trace.dropped())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("t.counter");
        counter.inc(); // disabled: dropped
        assert_eq!(counter.value(), 0);
        registry.set_enabled(true);
        counter.add(3);
        counter.inc();
        assert_eq!(counter.value(), 4);
        // The same name returns the same underlying metric.
        assert_eq!(registry.counter("t.counter").value(), 4);
        registry.reset();
        assert_eq!(counter.value(), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        let gauge = registry.gauge("t.gauge");
        gauge.set(5);
        gauge.set(2);
        assert_eq!(gauge.value(), 2);
        assert_eq!(gauge.hwm(), 5);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        let hist = registry.histogram("t.hist");
        for v in [0, 1, 2, 3, 1000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        // 0 → le 0; 1 → le 1; {2,3} → le 3; 1000 → le 1023.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn snapshot_json_is_valid_dialect() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        registry.counter("a.count").add(7);
        registry.gauge("b.gauge").set(3);
        registry.histogram("c.hist").record(5);
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"a.count\": 7"));
        assert!(json.contains("\"value\": 3"));
        assert!(json.contains("\"buckets\": [[7, 1]]"));
    }

    #[test]
    fn trace_ring_drops_oldest_without_panic() {
        let trace = Trace::new(2);
        for i in 0..5 {
            let seq = trace.start(if i % 2 == 0 { "tuple" } else { "compile" });
            trace.finish(seq);
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
        // The survivors are the two newest.
        let spans = trace.spans();
        assert_eq!(spans[0].seq, 3);
        assert_eq!(spans[1].seq, 4);
        // Finishing an evicted/unknown span is a no-op.
        trace.finish(0);
        trace.finish(99);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn spans_nest_and_build_profile_trees() {
        let trace = Rc::new(Trace::new(64));
        with_trace(Rc::clone(&trace), || {
            let query = span("query").expect("trace installed");
            query.attr("structural_key", "abcd".into());
            {
                let _rewrite = span("rewrite");
            }
            {
                let _eval = span("evaluate");
                let _tuple = span("tuple");
            }
        });
        let (roots, dropped) = profile_nodes(&trace);
        assert_eq!(dropped, 0);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "query");
        assert_eq!(root.attrs, vec![("structural_key".into(), "abcd".into())]);
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["rewrite", "evaluate"]);
        assert_eq!(root.children[1].children[0].name, "tuple");
    }

    #[test]
    fn span_without_trace_or_tracing_is_none() {
        assert!(span("query").is_none());
    }

    #[test]
    fn profile_shape_strips_durations() {
        let profile = ExecutionProfile {
            root: ProfileNode {
                name: "query".into(),
                attrs: vec![("k".into(), "v".into())],
                dur_ns: 1_500_000,
                children: vec![ProfileNode::new("rewrite")],
            },
            dropped_spans: 0,
        };
        assert_eq!(profile.shape(), "query [k=v]\n  rewrite\n");
        assert!(profile.render().contains("(1.500ms)"));
    }

    #[test]
    fn nested_with_trace_restores_the_outer_trace() {
        let outer = Rc::new(Trace::new(8));
        let inner = Rc::new(Trace::new(8));
        with_trace(Rc::clone(&outer), || {
            with_trace(Rc::clone(&inner), || {
                let _s = span("compile");
            });
            let _s = span("tuple");
        });
        assert_eq!(inner.spans().len(), 1);
        assert_eq!(inner.spans()[0].name, "compile");
        assert_eq!(outer.spans().len(), 1);
        assert_eq!(outer.spans()[0].name, "tuple");
    }
}
