//! A checksummed, length-prefixed **write-ahead log** for deltas: the
//! durability companion to the snapshot codec. Snapshots capture the compiled
//! state at an instant; the WAL captures every acknowledged mutation *since*
//! that instant, so a restart replays `snapshot + log tail` and loses nothing.
//!
//! # File layout
//!
//! ```text
//! [8B magic "PVCWAL\0\0"] [u32 version]
//! record*
//! record := [u32 body_len] [body] [u64 fnv64(body)]
//! body   := [u64 seq] [str tenant] [bytes payload]
//! ```
//!
//! All integers are little-endian; `str`/`bytes` use the length-prefixed
//! [`Writer`]/[`Reader`] encodings of the snapshot codec. The payload is opaque
//! to this layer — `pvc-db` stores a serialized `Delta` there.
//!
//! # Invariants
//!
//! * **Sequence numbers are strictly increasing** within a file. The reader
//!   rejects (treats as tail corruption) any record that goes backwards.
//! * **Torn tails truncate, they never poison.** A crash mid-append leaves a
//!   prefix of a record at the end of the file; [`WalWriter::open`] detects it
//!   (short frame or checksum mismatch), amputates the file back to the last
//!   whole record and carries on. Only a file whose *header* is malformed is a
//!   typed [`PersistError`] — there is nothing safe to salvage.
//! * **No wrong data is ever accepted**: every record body is covered by an
//!   FNV-1a checksum, verified before the body is parsed.
//!
//! # Fsync discipline
//!
//! [`Durability`] picks the trade-off per log: `Always` fsyncs every append
//! (an acknowledged delta survives a power cut), `Batch` defers the fsync to
//! an explicit [`WalWriter::sync`] (the serve layer calls it per mutation
//! batch), `None` leaves flushing to the OS (crash-consistent but the tail
//! may be lost on power failure — process kills are still fully covered).

use super::storage::Storage;
use super::{fnv64, PersistError, Reader, Writer};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The 8-byte magic prefix of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"PVCWAL\0\0";

/// The current WAL format version; like the snapshot format, readers never
/// migrate other versions (the log is replay state — after a clean snapshot it
/// can always be regenerated empty).
pub const WAL_VERSION: u32 = 1;

/// How eagerly WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync: appends go to the OS page cache. Survives process crashes
    /// (`kill -9`), not power loss.
    None,
    /// Fsync only on explicit [`WalWriter::sync`] calls — the caller groups
    /// appends into batches and pays one fsync per batch.
    Batch,
    /// Fsync every append before it is acknowledged. The strongest mode and
    /// the default.
    #[default]
    Always,
}

impl Durability {
    /// Parse the lowercase mode names used by CLI flags and env vars.
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "none" => Some(Durability::None),
            "batch" => Some(Durability::Batch),
            "always" => Some(Durability::Always),
            _ => None,
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Durability::None => "none",
            Durability::Batch => "batch",
            Durability::Always => "always",
        })
    }
}

/// One logged mutation: an opaque payload stamped with its tenant and
/// monotonic sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based within the log's lifetime).
    pub seq: u64,
    /// The tenant the mutation belongs to (`""` for single-tenant embedders).
    pub tenant: String,
    /// The serialized mutation (a `pvc-db` `Delta`).
    pub payload: Vec<u8>,
}

/// What [`read_wal`] recovered from a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Every whole, checksum-verified record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole records). Truncating
    /// the file to this length amputates any torn tail.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix that were dropped as a torn/corrupt tail.
    pub tail_dropped_bytes: u64,
}

impl WalRecovery {
    /// The empty log (fresh file, or none on disk yet).
    fn empty(valid_bytes: u64) -> Self {
        WalRecovery {
            records: Vec::new(),
            valid_bytes,
            tail_dropped_bytes: 0,
        }
    }

    /// Highest sequence number recovered (0 when the log is empty).
    pub fn high_water(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }
}

const HEADER_LEN: usize = 8 + 4;
/// Frame overhead around a record body: u32 length prefix + u64 checksum.
const FRAME_OVERHEAD: usize = 4 + 8;

fn header_bytes() -> Vec<u8> {
    let mut w = Writer::new();
    let mut bytes = WAL_MAGIC.to_vec();
    w.put_u32(WAL_VERSION);
    bytes.extend_from_slice(&w.into_bytes());
    bytes
}

fn encode_record(seq: u64, tenant: &str, payload: &[u8]) -> Vec<u8> {
    let mut body = Writer::new();
    body.put_u64(seq);
    body.put_str(tenant);
    body.put_bytes(payload);
    let body = body.into_bytes();
    let mut frame = Writer::new();
    frame.put_u32(body.len() as u32);
    let mut out = frame.into_bytes();
    let checksum = fnv64(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parse all whole records out of `bytes` (a full WAL image). Returns the
/// records plus the length of the valid prefix; anything past it is a torn or
/// corrupt tail the caller should truncate away. Only a malformed *header* is
/// an error — a log that never got its header written (0 bytes) reads as
/// empty.
pub fn parse_wal(bytes: &[u8]) -> Result<WalRecovery, PersistError> {
    if bytes.is_empty() {
        return Ok(WalRecovery::empty(0));
    }
    if bytes.len() < HEADER_LEN || bytes[..8] != WAL_MAGIC {
        return Err(PersistError::Format(
            "not a WAL file (bad magic/short header)".to_string(),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != WAL_VERSION {
        return Err(PersistError::Version {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut recovery = WalRecovery::empty(HEADER_LEN as u64);
    let mut pos = HEADER_LEN;
    let mut last_seq = 0u64;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            break; // torn length prefix
        }
        let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() < FRAME_OVERHEAD + body_len {
            break; // torn body/checksum
        }
        let body = &rest[4..4 + body_len];
        let stored = u64::from_le_bytes(
            rest[4 + body_len..4 + body_len + 8]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv64(body) != stored {
            break; // corrupt record: refuse it and everything after
        }
        let mut r = Reader::new(body);
        let Ok(seq) = r.take_u64() else { break };
        let Ok(tenant) = r.take_str() else { break };
        let Ok(payload) = r.take_bytes() else { break };
        if r.remaining() != 0 || seq <= last_seq {
            break; // trailing garbage in body, or sequence went backwards
        }
        last_seq = seq;
        recovery.records.push(WalRecord {
            seq,
            tenant: tenant.to_string(),
            payload: payload.to_vec(),
        });
        pos += 4 + body_len + 8;
        recovery.valid_bytes = pos as u64;
    }
    recovery.tail_dropped_bytes = bytes.len() as u64 - recovery.valid_bytes;
    Ok(recovery)
}

/// Read and verify the WAL at `path`. A missing file is an empty log; a torn
/// tail is reported (and reflected in `valid_bytes`) but is not an error.
pub fn read_wal(storage: &dyn Storage, path: &Path) -> Result<WalRecovery, PersistError> {
    let bytes = match storage.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalRecovery::empty(0));
        }
        Err(e) => {
            return Err(PersistError::Io(format!(
                "failed to read WAL {}: {e}",
                path.display()
            )))
        }
    };
    let recovery = parse_wal(&bytes)?;
    let m = crate::obs::core_metrics();
    m.wal_replayed_records.add(recovery.records.len() as u64);
    if recovery.tail_dropped_bytes > 0 {
        m.wal_torn_tails.inc();
    }
    Ok(recovery)
}

/// An append-only writer over one WAL file. Create via [`WalWriter::open`],
/// which also performs recovery (torn-tail truncation) and reports what was
/// already in the log.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    storage: Arc<dyn Storage>,
    durability: Durability,
    last_seq: u64,
    unsynced: u64,
}

impl WalWriter {
    /// Open (or create) the WAL at `path`: read and verify the existing
    /// records, truncate any torn tail, write the header if the file is new,
    /// and position the writer after the last valid record. Returns the
    /// writer plus everything recovered — the caller replays those records
    /// before appending new ones.
    pub fn open(
        storage: Arc<dyn Storage>,
        path: impl Into<PathBuf>,
        durability: Durability,
    ) -> Result<(WalWriter, WalRecovery), PersistError> {
        let path = path.into();
        let recovery = read_wal(storage.as_ref(), &path)?;
        let io_err = |stage: &str, e: std::io::Error| {
            PersistError::Io(format!("failed to {stage} WAL {}: {e}", path.display()))
        };
        if recovery.tail_dropped_bytes > 0 {
            storage
                .truncate(&path, recovery.valid_bytes)
                .map_err(|e| io_err("truncate torn tail of", e))?;
        }
        if recovery.valid_bytes == 0 {
            // Fresh (or header-less zero-byte) log: write the header.
            storage
                .append(&path, &header_bytes(), durability == Durability::Always)
                .map_err(|e| io_err("initialise", e))?;
        }
        let last_seq = recovery.high_water();
        Ok((
            WalWriter {
                path,
                storage,
                durability,
                last_seq,
                unsynced: 0,
            },
            recovery,
        ))
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fsync discipline of this writer.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Sequence number of the last record in the log (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Override the sequence counter. Used after replay when the snapshot's
    /// high-water mark is ahead of the (rotated) log.
    pub fn set_last_seq(&mut self, seq: u64) {
        self.last_seq = self.last_seq.max(seq);
    }

    /// Append one record and (under [`Durability::Always`]) fsync it. Returns
    /// the sequence number assigned to the record. On failure nothing is
    /// acknowledged — the on-disk tail may be torn, which the next open
    /// truncates away.
    pub fn append(&mut self, tenant: &str, payload: &[u8]) -> Result<u64, PersistError> {
        let seq = self.last_seq + 1;
        let frame = encode_record(seq, tenant, payload);
        let started = std::time::Instant::now();
        self.storage
            .append(&self.path, &frame, self.durability == Durability::Always)
            .map_err(|e| {
                PersistError::Io(format!(
                    "failed to append to WAL {}: {e}",
                    self.path.display()
                ))
            })?;
        self.last_seq = seq;
        if self.durability == Durability::Batch {
            self.unsynced += 1;
        }
        let m = crate::obs::core_metrics();
        m.wal_append_bytes.record(frame.len() as u64);
        m.wal_append_us
            .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
        Ok(seq)
    }

    /// Flush pending appends to stable storage (a no-op unless running under
    /// [`Durability::Batch`] with unsynced appends).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if self.durability != Durability::Batch || self.unsynced == 0 {
            return Ok(());
        }
        self.storage.sync_file(&self.path).map_err(|e| {
            PersistError::Io(format!("failed to sync WAL {}: {e}", self.path.display()))
        })?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record with `seq <= up_to` — called after a snapshot whose
    /// high-water mark is `up_to` has been durably published, so the log only
    /// carries deltas the snapshot does not. The rewrite is atomic
    /// (temp + rename): a crash mid-rotation leaves the previous, longer log,
    /// which merely replays some already-snapshotted records (replay is
    /// idempotent because the snapshot's high-water mark filters them out).
    pub fn rotate(&mut self, up_to: u64) -> Result<(), PersistError> {
        let mut image = header_bytes();
        let recovery = read_wal(self.storage.as_ref(), &self.path)?;
        for record in &recovery.records {
            if record.seq > up_to {
                image.extend_from_slice(&encode_record(
                    record.seq,
                    &record.tenant,
                    &record.payload,
                ));
            }
        }
        self.storage.write_atomic(&self.path, &image).map_err(|e| {
            PersistError::Io(format!("failed to rotate WAL {}: {e}", self.path.display()))
        })?;
        crate::obs::core_metrics().wal_rotations.inc();
        self.unsynced = 0;
        self.last_seq = self.last_seq.max(up_to);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::storage::FsStorage;
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pvc-wal-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn fs() -> Arc<dyn Storage> {
        Arc::new(FsStorage)
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let dir = scratch("roundtrip");
        let path = dir.join("t.wal");
        let (mut w, rec) = WalWriter::open(fs(), &path, Durability::Always).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(w.append("t0", b"alpha").unwrap(), 1);
        assert_eq!(w.append("t0", b"beta").unwrap(), 2);
        assert_eq!(w.append("t1", b"gamma").unwrap(), 3);
        drop(w);
        let (w2, rec2) = WalWriter::open(fs(), &path, Durability::Always).unwrap();
        assert_eq!(w2.last_seq(), 3);
        assert_eq!(rec2.tail_dropped_bytes, 0);
        let got: Vec<_> = rec2
            .records
            .iter()
            .map(|r| (r.seq, r.tenant.as_str(), r.payload.as_slice()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, "t0", b"alpha".as_slice()),
                (2, "t0", b"beta".as_slice()),
                (3, "t1", b"gamma".as_slice()),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join("t.wal");
        let (mut w, _) = WalWriter::open(fs(), &path, Durability::None).unwrap();
        w.append("t0", b"kept").unwrap();
        drop(w);
        // Simulate a crash mid-append: half a record at the tail.
        let frame = encode_record(2, "t0", b"torn-away");
        FsStorage
            .append(&path, &frame[..frame.len() / 2], false)
            .unwrap();
        let (w2, rec) = WalWriter::open(fs(), &path, Durability::None).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"kept");
        assert!(rec.tail_dropped_bytes > 0);
        assert_eq!(w2.last_seq(), 1);
        // The file itself was amputated back to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), rec.valid_bytes);
        // The writer resumes cleanly after the amputation.
        drop(w2);
        let (mut w3, _) = WalWriter::open(fs(), &path, Durability::None).unwrap();
        assert_eq!(w3.append("t0", b"after").unwrap(), 2);
        let (_, rec3) = WalWriter::open(fs(), &path, Durability::None).unwrap();
        assert_eq!(rec3.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_rejects_it_and_everything_after() {
        let dir = scratch("corrupt");
        let path = dir.join("t.wal");
        let (mut w, _) = WalWriter::open(fs(), &path, Durability::None).unwrap();
        w.append("t0", b"one").unwrap();
        let keep = std::fs::metadata(&path).unwrap().len();
        w.append("t0", b"two").unwrap();
        w.append("t0", b"three").unwrap();
        drop(w);
        // Flip one payload byte of record 2.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = keep as usize + FRAME_OVERHEAD;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let rec = read_wal(&FsStorage, &path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"one");
        assert!(rec.tail_dropped_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_drops_snapshotted_records() {
        let dir = scratch("rotate");
        let path = dir.join("t.wal");
        let (mut w, _) = WalWriter::open(fs(), &path, Durability::Batch).unwrap();
        for i in 0..5u8 {
            w.append("t0", &[i]).unwrap();
        }
        w.sync().unwrap();
        w.rotate(3).unwrap();
        assert_eq!(w.last_seq(), 5);
        let rec = read_wal(&FsStorage, &path).unwrap();
        let seqs: Vec<_> = rec.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        // Appends continue past the rotation without reusing sequence numbers.
        assert_eq!(w.append("t0", b"next").unwrap(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Build an in-memory WAL image with `n` records of varied sizes.
    fn image_with_records(n: u64) -> (Vec<u8>, Vec<(u64, Vec<u8>)>) {
        let originals: Vec<(u64, Vec<u8>)> = (1..=n)
            .map(|i| (i, vec![i as u8; (i as usize * 3) % 17 + 1]))
            .collect();
        let mut image = header_bytes();
        for (seq, payload) in &originals {
            image.extend_from_slice(&encode_record(*seq, "t", payload));
        }
        (image, originals)
    }

    /// Every surviving record must be byte-identical to the original at its
    /// position — corruption may shorten the recovered prefix, never change it.
    fn assert_intact_prefix(rec: &WalRecovery, originals: &[(u64, Vec<u8>)]) {
        assert!(rec.records.len() <= originals.len());
        for (got, want) in rec.records.iter().zip(originals) {
            assert_eq!(got.seq, want.0);
            assert_eq!(got.tenant, "t");
            assert_eq!(got.payload, want.1);
        }
    }

    #[test]
    fn fuzz_single_bit_flips_never_accept_wrong_data() {
        let (image, originals) = image_with_records(8);
        assert_eq!(parse_wal(&image).unwrap().records.len(), 8);
        let mut rng = pvc_prob::SeededRng::seed_from_u64(0x05ee_d0a1);
        for trial in 0..400 {
            let bit = rng.gen_range(0..(image.len() as i64 * 8)) as usize;
            let mut corrupted = image.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            match parse_wal(&corrupted) {
                // A flip in the header is a typed error; anywhere else the
                // parse recovers a prefix.
                Err(PersistError::Format(_)) | Err(PersistError::Version { .. }) => {}
                Err(e) => panic!("trial {trial} (bit {bit}): unexpected error kind {e}"),
                Ok(rec) => {
                    assert_intact_prefix(&rec, &originals);
                    // Every bit of the image is load-bearing (length, body,
                    // checksum), so a flip past the header must cost at least
                    // the record it landed in.
                    assert!(
                        rec.records.len() < originals.len(),
                        "trial {trial}: bit {bit} flipped yet all records were accepted"
                    );
                }
            }
        }
    }

    #[test]
    fn fuzz_every_truncation_yields_an_intact_prefix() {
        let (image, originals) = image_with_records(6);
        for cut in 0..=image.len() {
            match parse_wal(&image[..cut]) {
                Ok(rec) => assert_intact_prefix(&rec, &originals),
                // Only a torn *header* is an error (an empty file is fine);
                // a torn record tail always recovers the prefix.
                Err(PersistError::Format(_)) => {
                    assert!((1..HEADER_LEN).contains(&cut), "cut {cut}")
                }
                Err(e) => panic!("cut {cut}: unexpected error kind {e}"),
            }
        }
    }

    #[test]
    fn fuzz_random_bytes_never_panic() {
        let mut rng = pvc_prob::SeededRng::seed_from_u64(0xbad_5eed);
        for _ in 0..200 {
            let len = rng.gen_range(0..512usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            // Typed error or success — never a panic, whatever the bytes.
            let _ = parse_wal(&bytes);
        }
        for _ in 0..200 {
            // Valid header followed by garbage: must also never panic, and
            // must never invent records out of noise with a valid checksum.
            let mut bytes = header_bytes();
            let len = rng.gen_range(0..256usize);
            bytes.extend((0..len).map(|_| rng.next_u64() as u8));
            if let Ok(rec) = parse_wal(&bytes) {
                assert!(
                    rec.records.is_empty(),
                    "random garbage parsed as records: {:?}",
                    rec.records
                );
            }
        }
    }

    #[test]
    fn wrong_version_and_magic_are_typed_errors() {
        let dir = scratch("versions");
        let path = dir.join("t.wal");
        std::fs::write(&path, b"NOTAWAL!....").unwrap();
        assert!(matches!(
            read_wal(&FsStorage, &path),
            Err(PersistError::Format(_))
        ));
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_wal(&FsStorage, &path),
            Err(PersistError::Version { found: 99, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
