//! Persistent snapshots of compile artifacts: a versioned, length-prefixed,
//! checksummed **binary format** for the hash-consed expression arena
//! ([`Interner`]) and the bounded artifact cache ([`CompilationCache`]), so a
//! serving engine can come back **warm** after a process restart instead of
//! recompiling every d-tree from scratch.
//!
//! This is the knowledge-compilation payoff made durable: the paper's d-trees
//! (and the distributions computed from them) are tractable compiled circuits —
//! first-class artifacts worth keeping, not per-query scratch. The snapshot
//! stores:
//!
//! * every interned semiring / semimodule node (children before parents, the
//!   arena's natural replay order);
//! * every cached artifact — semiring and aggregate distributions plus compiled
//!   [`DTreeArena`]s — with its insertion **scope tag** (so cross-query hit
//!   accounting survives the restart) in least-recently-used-first order (so
//!   replaying the entries reproduces the LRU recency order);
//! * the cache's [`CacheConfig`] bounds and an opaque caller-supplied *extra*
//!   section (the engine in `pvc-db` stores its step-I rewrite cache there).
//!
//! # Safety & versioning contract
//!
//! * The file starts with an 8-byte magic and a format version; a mismatched
//!   version is refused with [`PersistError::Version`] — **no** cross-version
//!   migration is attempted (see `docs/SNAPSHOT_FORMAT.md` for the policy).
//! * The whole file is covered by a trailing FNV-1a checksum; truncation or
//!   corruption is reported as a typed error, never a panic.
//! * A caller-provided 64-bit **fingerprint** (the engine uses a digest of the
//!   database: variable distributions, semiring, table contents) is embedded and
//!   must match on load ([`Snapshot::verify_fingerprint`]): cached artifacts are
//!   functions of the probability space they were computed under, so a snapshot
//!   is only valid against the *same* database.
//!
//! # Id remapping
//!
//! Interned ids are arena indices and therefore not stable across processes once
//! the target arena already holds other expressions. [`Snapshot::restore_into`]
//! replays each snapshot node through [`Interner::intern_node`], building a
//! snapshot-id → live-id map, and rewrites every cache key through that map — so
//! snapshots **compose with a live arena**: restoring into a non-empty store
//! deduplicates shared structure and simply adds the missing artifacts.

pub mod storage;
pub mod wal;

use crate::arena::DTreeArena;
use crate::cache::{CacheConfig, CompilationCache};
use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringValue};
use pvc_expr::intern::{AggExprId, ExprId, InternedExpr, Interner};
use pvc_expr::Var;
use pvc_prob::{Dist, MonoidDist, SemiringDist};
use std::fmt;
use std::sync::Arc;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PVCSNAP\0";

/// The current snapshot format version. Bumped on **every** layout change; a
/// reader never attempts to migrate another version (the snapshot is a cache —
/// regenerating it is always safe).
///
/// Version history: v1 — initial layout; v2 — per-table fingerprint vector
/// inserted after the cache bounds (delta-aware warm restarts); v3 — the
/// engine's `extra` section gained a leading WAL high-water mark (crash-safe
/// durability), so v2 extras no longer parse.
pub const FORMAT_VERSION: u32 = 3;

/// Errors of the snapshot codec. Every failure mode of loading — I/O, bad
/// magic, truncation, version or checksum mismatch, a snapshot recorded against
/// a different database — surfaces as a typed variant; nothing panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// Reading or writing the snapshot file failed.
    Io(String),
    /// The bytes are not a snapshot, or are structurally malformed / truncated.
    Format(String),
    /// The snapshot was written by a different format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// The only version this build reads.
        supported: u32,
    },
    /// The trailing checksum does not match the content (corruption/truncation).
    Checksum {
        /// Checksum recomputed from the content.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// The snapshot was recorded against a different database (variable
    /// distributions, semiring or table contents differ).
    Fingerprint {
        /// Fingerprint of the database the caller wants to serve.
        expected: u64,
        /// Fingerprint embedded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(detail) => write!(f, "snapshot I/O failed: {detail}"),
            PersistError::Format(detail) => write!(f, "malformed snapshot: {detail}"),
            PersistError::Version { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 version {supported}); regenerate the snapshot"
            ),
            PersistError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (stored {found:#018x}, computed {expected:#018x}): \
                 the file is corrupted or truncated"
            ),
            PersistError::Fingerprint { expected, found } => write!(
                f,
                "snapshot was recorded against a different database (snapshot fingerprint \
                 {found:#018x}, database fingerprint {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// FNV-1a over a byte slice — the snapshot's integrity checksum, exported so
/// dependants (the engine's database fingerprint, tests patching snapshot
/// bytes) share one implementation instead of re-rolling the constants.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Little-endian primitive writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer used by every snapshot codec (also by
/// the engine's rewrite-cache codec in `pvc-db`).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64` (little-endian two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its exact IEEE-754 bit pattern (bit-identical round
    /// trip — the basis of the "persisted results equal never-persisted
    /// results" guarantee).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a snapshot byte slice. Every read
/// returns [`PersistError::Format`] on truncation instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Format(format!(
                "unexpected end of snapshot: needed {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `i64`.
    pub fn take_i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.take_u64()? as i64)
    }

    /// Read an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a count that prefixes `min_element_bytes`-sized elements, rejecting
    /// counts the remaining bytes cannot possibly hold (an allocation guard
    /// against maliciously large length prefixes).
    pub fn take_count(&mut self, min_element_bytes: usize) -> Result<usize, PersistError> {
        let n = self.take_u64()?;
        let cap = (self.remaining() / min_element_bytes.max(1)) as u64;
        if n > cap {
            return Err(PersistError::Format(format!(
                "implausible element count {n} at offset {} ({} bytes left)",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.take_count(1)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|e| PersistError::Format(format!("invalid UTF-8 in snapshot string: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Value codecs (shared with the engine's rewrite codec in pvc-db)
// ---------------------------------------------------------------------------

/// Encode a [`SemiringValue`].
pub fn put_semiring_value(w: &mut Writer, v: &SemiringValue) {
    match v {
        SemiringValue::Bool(b) => {
            w.put_u8(0);
            w.put_u8(*b as u8);
        }
        SemiringValue::Nat(n) => {
            w.put_u8(1);
            w.put_u64(*n);
        }
    }
}

/// Decode a [`SemiringValue`].
pub fn take_semiring_value(r: &mut Reader<'_>) -> Result<SemiringValue, PersistError> {
    match r.take_u8()? {
        0 => Ok(SemiringValue::Bool(r.take_u8()? != 0)),
        1 => Ok(SemiringValue::Nat(r.take_u64()?)),
        t => Err(PersistError::Format(format!("bad semiring-value tag {t}"))),
    }
}

/// Encode a [`MonoidValue`].
pub fn put_monoid_value(w: &mut Writer, v: &MonoidValue) {
    match v {
        MonoidValue::NegInf => w.put_u8(0),
        MonoidValue::Fin(n) => {
            w.put_u8(1);
            w.put_i64(*n);
        }
        MonoidValue::PosInf => w.put_u8(2),
    }
}

/// Decode a [`MonoidValue`].
pub fn take_monoid_value(r: &mut Reader<'_>) -> Result<MonoidValue, PersistError> {
    match r.take_u8()? {
        0 => Ok(MonoidValue::NegInf),
        1 => Ok(MonoidValue::Fin(r.take_i64()?)),
        2 => Ok(MonoidValue::PosInf),
        t => Err(PersistError::Format(format!("bad monoid-value tag {t}"))),
    }
}

/// Encode an [`AggOp`].
pub fn put_agg_op(w: &mut Writer, op: AggOp) {
    w.put_u8(match op {
        AggOp::Min => 0,
        AggOp::Max => 1,
        AggOp::Sum => 2,
        AggOp::Count => 3,
        AggOp::Prod => 4,
    });
}

/// Decode an [`AggOp`].
pub fn take_agg_op(r: &mut Reader<'_>) -> Result<AggOp, PersistError> {
    match r.take_u8()? {
        0 => Ok(AggOp::Min),
        1 => Ok(AggOp::Max),
        2 => Ok(AggOp::Sum),
        3 => Ok(AggOp::Count),
        4 => Ok(AggOp::Prod),
        t => Err(PersistError::Format(format!("bad aggregation-op tag {t}"))),
    }
}

/// Encode a [`CmpOp`].
pub fn put_cmp_op(w: &mut Writer, op: CmpOp) {
    w.put_u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Le => 2,
        CmpOp::Ge => 3,
        CmpOp::Lt => 4,
        CmpOp::Gt => 5,
    });
}

/// Decode a [`CmpOp`].
pub fn take_cmp_op(r: &mut Reader<'_>) -> Result<CmpOp, PersistError> {
    match r.take_u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Le),
        3 => Ok(CmpOp::Ge),
        4 => Ok(CmpOp::Lt),
        5 => Ok(CmpOp::Gt),
        t => Err(PersistError::Format(format!("bad comparison-op tag {t}"))),
    }
}

/// Encode a sparse distribution (support pairs in ascending value order, exact
/// probability bits).
fn put_dist<T: Ord + Clone>(w: &mut Writer, d: &Dist<T>, put_value: impl Fn(&mut Writer, &T)) {
    w.put_u64(d.support_size() as u64);
    for (v, p) in d.iter() {
        put_value(w, v);
        w.put_f64(p);
    }
}

/// Decode a sparse distribution. Rebuilt through [`Dist::from_pairs`], which
/// reproduces the stored entries exactly (they already satisfy the sorted /
/// unique / above-epsilon invariants) while staying panic-free on any input.
fn take_dist<T: Ord + Clone>(
    r: &mut Reader<'_>,
    take_value: impl Fn(&mut Reader<'_>) -> Result<T, PersistError>,
) -> Result<Dist<T>, PersistError> {
    let n = r.take_count(9)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let v = take_value(r)?;
        let p = r.take_f64()?;
        pairs.push((v, p));
    }
    Ok(Dist::from_pairs(pairs))
}

// ---------------------------------------------------------------------------
// Interner section
// ---------------------------------------------------------------------------

const EXPR_VAR: u8 = 0;
const EXPR_CONST: u8 = 1;
const EXPR_ADD: u8 = 2;
const EXPR_MUL: u8 = 3;
const EXPR_CMP_SS: u8 = 4;
const EXPR_CMP_MM: u8 = 5;

fn put_interner(w: &mut Writer, interner: &Interner) {
    let nodes = interner.nodes();
    w.put_u64(nodes.len() as u64);
    for node in nodes {
        match node {
            InternedExpr::Var(v) => {
                w.put_u8(EXPR_VAR);
                w.put_u32(v.0);
            }
            InternedExpr::Const(c) => {
                w.put_u8(EXPR_CONST);
                put_semiring_value(w, c);
            }
            InternedExpr::Add(children) => {
                w.put_u8(EXPR_ADD);
                w.put_u64(children.len() as u64);
                for c in children {
                    w.put_u32(c.0);
                }
            }
            InternedExpr::Mul(children) => {
                w.put_u8(EXPR_MUL);
                w.put_u64(children.len() as u64);
                for c in children {
                    w.put_u32(c.0);
                }
            }
            InternedExpr::CmpSS(op, a, b) => {
                w.put_u8(EXPR_CMP_SS);
                put_cmp_op(w, *op);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
            InternedExpr::CmpMM(op, a, b) => {
                w.put_u8(EXPR_CMP_MM);
                put_cmp_op(w, *op);
                w.put_u32(a.0);
                w.put_u32(b.0);
            }
        }
    }
    let aggs = interner.agg_nodes();
    w.put_u64(aggs.len() as u64);
    for agg in aggs {
        put_agg_op(w, agg.op);
        w.put_u64(agg.terms.len() as u64);
        for (coeff, value) in &agg.terms {
            w.put_u32(coeff.0);
            put_monoid_value(w, value);
        }
    }
}

/// A snapshot node with snapshot-local child ids (remapped on restore).
#[derive(Debug)]
enum RawExpr {
    Var(u32),
    Const(SemiringValue),
    Add(Vec<u32>),
    Mul(Vec<u32>),
    CmpSS(CmpOp, u32, u32),
    CmpMM(CmpOp, u32, u32),
}

#[derive(Debug)]
struct RawAgg {
    op: AggOp,
    terms: Vec<(u32, MonoidValue)>,
    /// Largest coefficient expression id (`u32::MAX` meaning "no terms"); used to
    /// validate the replay-order invariant below.
    max_coeff: u32,
}

fn take_interner(r: &mut Reader<'_>) -> Result<(Vec<RawExpr>, Vec<RawAgg>), PersistError> {
    let n_exprs = r.take_count(2)?;
    let mut exprs = Vec::with_capacity(n_exprs);
    for i in 0..n_exprs {
        let child = |id: u32| -> Result<u32, PersistError> {
            if (id as usize) < i {
                Ok(id)
            } else {
                Err(PersistError::Format(format!(
                    "expression node {i} references child {id} (children must precede parents)"
                )))
            }
        };
        let node = match r.take_u8()? {
            EXPR_VAR => RawExpr::Var(r.take_u32()?),
            EXPR_CONST => RawExpr::Const(take_semiring_value(r)?),
            tag @ (EXPR_ADD | EXPR_MUL) => {
                let n = r.take_count(4)?;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(child(r.take_u32()?)?);
                }
                if tag == EXPR_ADD {
                    RawExpr::Add(children)
                } else {
                    RawExpr::Mul(children)
                }
            }
            EXPR_CMP_SS => {
                let op = take_cmp_op(r)?;
                RawExpr::CmpSS(op, child(r.take_u32()?)?, child(r.take_u32()?)?)
            }
            EXPR_CMP_MM => {
                let op = take_cmp_op(r)?;
                RawExpr::CmpMM(op, r.take_u32()?, r.take_u32()?)
            }
            t => return Err(PersistError::Format(format!("bad expression tag {t}"))),
        };
        exprs.push(node);
    }
    let n_aggs = r.take_count(2)?;
    let mut aggs = Vec::with_capacity(n_aggs);
    for _ in 0..n_aggs {
        let op = take_agg_op(r)?;
        let n = r.take_count(5)?;
        let mut terms = Vec::with_capacity(n);
        let mut max_coeff = 0u32;
        for _ in 0..n {
            let coeff = r.take_u32()?;
            if coeff as usize >= n_exprs {
                return Err(PersistError::Format(format!(
                    "aggregate term references unknown expression {coeff}"
                )));
            }
            max_coeff = max_coeff.max(coeff);
            terms.push((coeff, take_monoid_value(r)?));
        }
        if terms.is_empty() {
            max_coeff = u32::MAX;
        }
        aggs.push(RawAgg {
            op,
            terms,
            max_coeff,
        });
    }
    // Validate the replay-order invariant: an expression node referencing an
    // aggregate node must come after every coefficient of that aggregate (true
    // for any interner-produced snapshot, since both arenas are append-only and
    // sub-expressions are interned before their parents).
    for (i, node) in exprs.iter().enumerate() {
        if let RawExpr::CmpMM(_, a, b) = node {
            for agg_id in [*a, *b] {
                let agg = aggs.get(agg_id as usize).ok_or_else(|| {
                    PersistError::Format(format!(
                        "expression node {i} references unknown aggregate {agg_id}"
                    ))
                })?;
                if agg.max_coeff != u32::MAX && agg.max_coeff as usize >= i {
                    return Err(PersistError::Format(format!(
                        "expression node {i} references aggregate {agg_id} whose coefficients \
                         are not yet defined"
                    )));
                }
            }
        }
    }
    Ok((exprs, aggs))
}

// ---------------------------------------------------------------------------
// Cache section
// ---------------------------------------------------------------------------

fn put_cache(w: &mut Writer, cache: &CompilationCache) {
    let export = cache.export();
    w.put_u64(export.semiring.len() as u64);
    for (key, scope, dist) in &export.semiring {
        w.put_u32(*key);
        w.put_u64(*scope);
        put_dist(w, dist, put_semiring_value);
    }
    w.put_u64(export.aggregate.len() as u64);
    for (key, scope, dist) in &export.aggregate {
        w.put_u32(*key);
        w.put_u64(*scope);
        put_dist(w, dist, put_monoid_value);
    }
    w.put_u64(export.sem_arenas.len() as u64);
    for (key, scope, arena) in &export.sem_arenas {
        w.put_u32(*key);
        w.put_u64(*scope);
        arena.encode_into(w);
    }
    w.put_u64(export.agg_arenas.len() as u64);
    for (key, scope, arena) in &export.agg_arenas {
        w.put_u32(*key);
        w.put_u64(*scope);
        arena.encode_into(w);
    }
}

#[derive(Debug)]
struct CacheEntries {
    semiring: Vec<(u32, u64, SemiringDist)>,
    aggregate: Vec<(u32, u64, MonoidDist)>,
    // Arenas are wrapped at decode time so restoring shares them by Arc clone
    // instead of deep-copying every node vector (restore is the startup path).
    sem_arenas: Vec<(u32, u64, Arc<DTreeArena>)>,
    agg_arenas: Vec<(u32, u64, Arc<DTreeArena>)>,
}

fn take_cache(
    r: &mut Reader<'_>,
    n_exprs: usize,
    n_aggs: usize,
) -> Result<CacheEntries, PersistError> {
    let key = |id: u32, bound: usize, what: &str| -> Result<u32, PersistError> {
        if (id as usize) < bound {
            Ok(id)
        } else {
            Err(PersistError::Format(format!(
                "cache entry references unknown {what} {id}"
            )))
        }
    };
    let n = r.take_count(12)?;
    let mut semiring = Vec::with_capacity(n);
    for _ in 0..n {
        let k = key(r.take_u32()?, n_exprs, "expression")?;
        let scope = r.take_u64()?;
        semiring.push((k, scope, take_dist(r, take_semiring_value)?));
    }
    let n = r.take_count(12)?;
    let mut aggregate = Vec::with_capacity(n);
    for _ in 0..n {
        let k = key(r.take_u32()?, n_aggs, "aggregate")?;
        let scope = r.take_u64()?;
        aggregate.push((k, scope, take_dist(r, take_monoid_value)?));
    }
    let n = r.take_count(12)?;
    let mut sem_arenas = Vec::with_capacity(n);
    for _ in 0..n {
        let k = key(r.take_u32()?, n_exprs, "expression")?;
        let scope = r.take_u64()?;
        sem_arenas.push((k, scope, Arc::new(DTreeArena::decode_from(r)?)));
    }
    let n = r.take_count(12)?;
    let mut agg_arenas = Vec::with_capacity(n);
    for _ in 0..n {
        let k = key(r.take_u32()?, n_aggs, "aggregate")?;
        let scope = r.take_u64()?;
        agg_arenas.push((k, scope, Arc::new(DTreeArena::decode_from(r)?)));
    }
    Ok(CacheEntries {
        semiring,
        aggregate,
        sem_arenas,
        agg_arenas,
    })
}

// ---------------------------------------------------------------------------
// The snapshot frame
// ---------------------------------------------------------------------------

/// Serialise an interner + cache pair into a self-contained snapshot byte
/// vector (magic, version, fingerprint, cache bounds, per-table fingerprint
/// vector, artifact sections, an opaque `extra` section, trailing checksum).
///
/// `fingerprint` identifies the probability space / database the artifacts were
/// computed under; `table_fingerprints` is the per-table refinement of that
/// digest (name → 64-bit content fingerprint, returned verbatim by
/// [`Snapshot::table_fingerprints`]) that lets a loader pinpoint *which* tables
/// diverged instead of rejecting the whole snapshot; `extra` is an opaque
/// caller section (the engine's step-I rewrite cache) returned verbatim by
/// [`Snapshot::extra`] on load.
pub fn encode_snapshot(
    interner: &Interner,
    cache: &CompilationCache,
    fingerprint: u64,
    table_fingerprints: &[(String, u64)],
    extra: Option<&[u8]>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(fingerprint);
    let config = cache.config();
    w.put_u64(config.max_entries as u64);
    w.put_u64(config.max_bytes as u64);
    w.put_u64(table_fingerprints.len() as u64);
    for (name, fp) in table_fingerprints {
        w.put_str(name);
        w.put_u64(*fp);
    }
    put_interner(&mut w, interner);
    put_cache(&mut w, cache);
    match extra {
        Some(bytes) => {
            w.put_u8(1);
            w.put_bytes(bytes);
        }
        None => w.put_u8(0),
    }
    let checksum = fnv64(&w.buf);
    w.put_u64(checksum);
    w.into_bytes()
}

/// A decoded, validated snapshot, ready to be restored into a live interner +
/// cache pair (see [`encode_snapshot`] and the [module docs](self)).
#[derive(Debug)]
pub struct Snapshot {
    fingerprint: u64,
    config: CacheConfig,
    table_fingerprints: Vec<(String, u64)>,
    exprs: Vec<RawExpr>,
    aggs: Vec<RawAgg>,
    cache: CacheEntries,
    extra: Option<Vec<u8>>,
}

/// What [`Snapshot::restore_into`] added to the target store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreStats {
    /// Interned semiring nodes replayed (counting nodes already present).
    pub interned_exprs: usize,
    /// Interned semimodule nodes replayed.
    pub interned_aggs: usize,
    /// Distributions (semiring + aggregate) inserted.
    pub distributions: usize,
    /// Compiled d-tree arenas inserted.
    pub arenas: usize,
}

/// Parse and validate snapshot bytes: magic, version, checksum, structural
/// sanity (child-before-parent ids, in-bounds cache keys). Returns a
/// [`Snapshot`] that can be fingerprint-checked and restored; the target store
/// is untouched until [`Snapshot::restore_into`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, PersistError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(PersistError::Format(format!(
            "{} bytes is too short for a snapshot",
            bytes.len()
        )));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::Format(
            "bad magic: not a pvc snapshot file".to_string(),
        ));
    }
    let mut r = Reader::new(bytes);
    r.take(MAGIC.len())?;
    let version = r.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv64(&bytes[..bytes.len() - 8]);
    if stored != computed {
        return Err(PersistError::Checksum {
            expected: computed,
            found: stored,
        });
    }
    // Re-scope the reader to exclude the trailing checksum.
    let mut r = Reader::new(&bytes[..bytes.len() - 8]);
    r.take(MAGIC.len() + 4)?;
    let fingerprint = r.take_u64()?;
    let config = CacheConfig {
        max_entries: usize::try_from(r.take_u64()?)
            .map_err(|_| PersistError::Format("cache entry bound overflows usize".into()))?,
        max_bytes: usize::try_from(r.take_u64()?)
            .map_err(|_| PersistError::Format("cache byte bound overflows usize".into()))?,
    };
    let n_tables = r.take_count(9)?;
    let mut table_fingerprints = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name = r.take_str()?.to_string();
        let fp = r.take_u64()?;
        table_fingerprints.push((name, fp));
    }
    let (exprs, aggs) = take_interner(&mut r)?;
    let cache = take_cache(&mut r, exprs.len(), aggs.len())?;
    let extra = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_bytes()?.to_vec()),
        t => return Err(PersistError::Format(format!("bad extra-section tag {t}"))),
    };
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the extra section",
            r.remaining()
        )));
    }
    Ok(Snapshot {
        fingerprint,
        config,
        table_fingerprints,
        exprs,
        aggs,
        cache,
        extra,
    })
}

impl Snapshot {
    /// The fingerprint embedded at save time.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The cache bounds the snapshot was recorded under.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The per-table fingerprint vector embedded at save time (empty for
    /// callers that only track the whole-database digest). Loaders compare it
    /// against the live database's vector to pinpoint which tables diverged —
    /// the delta-aware warm-restart path keeps artifacts of matching tables and
    /// evicts only the rest.
    pub fn table_fingerprints(&self) -> &[(String, u64)] {
        &self.table_fingerprints
    }

    /// The opaque caller section, if one was stored.
    pub fn extra(&self) -> Option<&[u8]> {
        self.extra.as_deref()
    }

    /// Refuse the snapshot unless it was recorded for `expected` (see
    /// [`PersistError::Fingerprint`]).
    pub fn verify_fingerprint(&self, expected: u64) -> Result<(), PersistError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(PersistError::Fingerprint {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// Refuse the snapshot if any expression or compiled arena references a
    /// variable id `>= var_count` (the size of the variable table the caller
    /// is about to evaluate against). The checksum only protects against
    /// accidental corruption — a deliberately crafted file carries a valid
    /// checksum, and an out-of-range [`Var`] would otherwise become an
    /// index-out-of-bounds panic at evaluation time. Fingerprint-matched
    /// snapshots always pass (the fingerprint covers the variable table the
    /// artifacts were built over).
    pub fn verify_variables(&self, var_count: usize) -> Result<(), PersistError> {
        let check = |v: u32| -> Result<(), PersistError> {
            if (v as usize) < var_count {
                Ok(())
            } else {
                Err(PersistError::Format(format!(
                    "snapshot references variable {v}, but the database has only \
                     {var_count} variables"
                )))
            }
        };
        for raw in &self.exprs {
            if let RawExpr::Var(v) = raw {
                check(*v)?;
            }
        }
        for arena in self
            .cache
            .sem_arenas
            .iter()
            .chain(&self.cache.agg_arenas)
            .map(|(_, _, a)| a)
        {
            if let Some(v) = arena.max_var() {
                check(v)?;
            }
        }
        Ok(())
    }

    /// Replay the snapshot into a live interner + cache: interned nodes are
    /// re-interned (deduplicating against whatever the arena already holds) and
    /// every cache entry is inserted under its **remapped** canonical id, in
    /// least-recently-used-first order, honouring the *target* cache's LRU
    /// bounds. Restoring into a freshly created pair reproduces the saved state
    /// exactly; restoring into a warm store merges.
    pub fn restore_into(
        &self,
        interner: &mut Interner,
        cache: &mut CompilationCache,
    ) -> Result<RestoreStats, PersistError> {
        let mut expr_map: Vec<Option<ExprId>> = vec![None; self.exprs.len()];
        let mut agg_map: Vec<Option<AggExprId>> = vec![None; self.aggs.len()];
        let mapped = |map: &[Option<ExprId>], id: u32| -> ExprId {
            map[id as usize].expect("validated child ordering")
        };
        for (i, raw) in self.exprs.iter().enumerate() {
            let node = match raw {
                RawExpr::Var(v) => InternedExpr::Var(Var(*v)),
                RawExpr::Const(c) => InternedExpr::Const(*c),
                RawExpr::Add(children) => {
                    InternedExpr::Add(children.iter().map(|c| mapped(&expr_map, *c)).collect())
                }
                RawExpr::Mul(children) => {
                    InternedExpr::Mul(children.iter().map(|c| mapped(&expr_map, *c)).collect())
                }
                RawExpr::CmpSS(op, a, b) => {
                    InternedExpr::CmpSS(*op, mapped(&expr_map, *a), mapped(&expr_map, *b))
                }
                RawExpr::CmpMM(op, a, b) => {
                    // Decode-time validation guarantees the referenced aggregates'
                    // coefficients are all remapped already.
                    for agg_id in [*a, *b] {
                        if agg_map[agg_id as usize].is_none() {
                            agg_map[agg_id as usize] =
                                Some(remap_agg(&self.aggs[agg_id as usize], &expr_map, interner));
                        }
                    }
                    InternedExpr::CmpMM(
                        *op,
                        agg_map[*a as usize].expect("just remapped"),
                        agg_map[*b as usize].expect("just remapped"),
                    )
                }
            };
            expr_map[i] = Some(interner.intern_node(node));
        }
        for (j, raw) in self.aggs.iter().enumerate() {
            if agg_map[j].is_none() {
                agg_map[j] = Some(remap_agg(raw, &expr_map, interner));
            }
        }
        let mut stats = RestoreStats {
            interned_exprs: self.exprs.len(),
            interned_aggs: self.aggs.len(),
            ..RestoreStats::default()
        };
        for (key, scope, dist) in &self.cache.semiring {
            let id = expr_map[*key as usize].expect("all expressions remapped");
            cache.insert_semiring(id, *scope, dist);
            stats.distributions += 1;
        }
        for (key, scope, dist) in &self.cache.aggregate {
            let id = agg_map[*key as usize].expect("all aggregates remapped");
            cache.insert_aggregate(id, *scope, dist);
            stats.distributions += 1;
        }
        for (key, scope, arena) in &self.cache.sem_arenas {
            let id = expr_map[*key as usize].expect("all expressions remapped");
            cache.insert_semiring_arena(id, *scope, arena);
            stats.arenas += 1;
        }
        for (key, scope, arena) in &self.cache.agg_arenas {
            let id = agg_map[*key as usize].expect("all aggregates remapped");
            cache.insert_aggregate_arena(id, *scope, arena);
            stats.arenas += 1;
        }
        Ok(stats)
    }
}

fn remap_agg(raw: &RawAgg, expr_map: &[Option<ExprId>], interner: &mut Interner) -> AggExprId {
    let terms = raw
        .terms
        .iter()
        .map(|(coeff, value)| {
            (
                expr_map[*coeff as usize].expect("validated coefficient ordering"),
                *value,
            )
        })
        .collect();
    interner.intern_agg(raw.op, terms)
}

/// Write snapshot bytes to a file **atomically**: the bytes go to a sibling
/// temporary file (same directory, so the final step stays on one filesystem)
/// which is then `rename`d into place.
///
/// A crash — or a `kill -9` from a supervisor — mid-write therefore leaves
/// either the previous complete snapshot or, at worst, a stray `.tmp` sibling;
/// the snapshot path itself never holds a truncated file that would only fail
/// (checksum/length mismatch) at the next warm restart. This is what makes
/// *background* snapshotting (the `pvc-serve` snapshot thread) safe to run on
/// every interval without risking the warm-restart story.
pub fn write_snapshot_file(
    path: impl AsRef<std::path::Path>,
    bytes: &[u8],
) -> Result<(), PersistError> {
    write_snapshot_file_with(&storage::FsStorage, path.as_ref(), bytes)
}

/// [`write_snapshot_file`] through a pluggable [`storage::Storage`] — the
/// variant the serve runtime uses so fault-injection tests can interpose on
/// the write path.
pub fn write_snapshot_file_with(
    storage: &dyn storage::Storage,
    path: &std::path::Path,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let started = std::time::Instant::now();
    storage.write_atomic(path, bytes).map_err(|e| {
        PersistError::Io(format!(
            "failed to publish snapshot {}: {e}",
            path.display()
        ))
    })?;
    let metrics = crate::obs::core_metrics();
    metrics.persist_save_bytes.record(bytes.len() as u64);
    metrics
        .persist_save_us
        .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    Ok(())
}

/// Read snapshot bytes from a file.
pub fn read_snapshot_file(path: impl AsRef<std::path::Path>) -> Result<Vec<u8>, PersistError> {
    read_snapshot_file_with(&storage::FsStorage, path.as_ref())
}

/// [`read_snapshot_file`] through a pluggable [`storage::Storage`].
pub fn read_snapshot_file_with(
    storage: &dyn storage::Storage,
    path: &std::path::Path,
) -> Result<Vec<u8>, PersistError> {
    let started = std::time::Instant::now();
    let bytes = storage.read(path).map_err(|e| {
        PersistError::Io(format!("failed to read snapshot {}: {e}", path.display()))
    })?;
    let metrics = crate::obs::core_metrics();
    metrics.persist_restore_bytes.record(bytes.len() as u64);
    metrics
        .persist_restore_us
        .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, CachedEvaluator, CompilationCache};
    use crate::compile::CompileOptions;
    use pvc_algebra::{MonoidValue::Fin, SemiringKind};
    use pvc_expr::{SemimoduleExpr, SemiringExpr, VarTable};

    fn v(i: u32) -> SemiringExpr {
        SemiringExpr::Var(Var(i))
    }

    fn populated() -> (VarTable, Interner, CompilationCache) {
        let mut vt = VarTable::new();
        let xs: Vec<_> = (0..6)
            .map(|i| vt.boolean(format!("x{i}"), 0.25 + 0.1 * i as f64))
            .collect();
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let exprs = [
            SemiringExpr::Var(xs[0]) * (SemiringExpr::Var(xs[1]) + SemiringExpr::Var(xs[2])),
            SemiringExpr::Var(xs[3]) * SemiringExpr::Var(xs[4])
                + SemiringExpr::Var(xs[0]) * SemiringExpr::Var(xs[5]),
            SemiringExpr::cmp_mm(
                pvc_algebra::CmpOp::Le,
                SemimoduleExpr::from_terms(
                    pvc_algebra::AggOp::Min,
                    vec![
                        (SemiringExpr::Var(xs[1]), Fin(10)),
                        (SemiringExpr::Var(xs[2]), Fin(20)),
                    ],
                ),
                SemimoduleExpr::constant(pvc_algebra::AggOp::Min, Fin(15)),
            ),
        ];
        for (scope, expr) in exprs.iter().enumerate() {
            let id = interner.intern(expr);
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                scope as u64,
            );
            eval.semiring_distribution(id).unwrap();
        }
        let alpha = SemimoduleExpr::from_terms(
            pvc_algebra::AggOp::Sum,
            vec![
                (SemiringExpr::Var(xs[0]), Fin(3)),
                (SemiringExpr::Var(xs[1]) * SemiringExpr::Var(xs[0]), Fin(5)),
            ],
        );
        let aid = interner.intern_semimodule(&alpha);
        let mut eval = CachedEvaluator::new(
            &mut interner,
            &mut cache,
            &vt,
            SemiringKind::Bool,
            CompileOptions::default(),
            7,
        );
        eval.aggregate_distribution(aid).unwrap();
        (vt, interner, cache)
    }

    #[test]
    fn fuzz_snapshot_single_bit_flips_are_always_rejected() {
        // The trailing FNV checksum covers every byte before it, so *any*
        // single-bit flip — body, header or the checksum itself — must turn
        // into a typed error, never a silently-wrong snapshot. This pins the
        // corruption-detection guarantee `docs/DURABILITY.md` documents.
        let (_vt, interner, cache) = populated();
        let tables = vec![("S".to_string(), 0x1111)];
        let bytes = encode_snapshot(&interner, &cache, 0xfeed, &tables, Some(b"extra"));
        decode_snapshot(&bytes).expect("pristine snapshot must decode");
        let mut rng = pvc_prob::SeededRng::seed_from_u64(0xf1ee7);
        for trial in 0..300 {
            let bit = rng.gen_range(0..(bytes.len() as i64 * 8)) as usize;
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_snapshot(&corrupted).is_err(),
                "trial {trial}: flipped bit {bit} was accepted"
            );
        }
    }

    #[test]
    fn fuzz_snapshot_truncations_are_typed_errors() {
        let (_vt, interner, cache) = populated();
        let bytes = encode_snapshot(&interner, &cache, 1, &[], None);
        let mut rng = pvc_prob::SeededRng::seed_from_u64(0x7a11);
        // Sample truncation points (plus the edges) instead of all lengths:
        // decode cost is linear, the property is identical at each cut.
        let mut cuts: Vec<usize> = (0..64)
            .map(|_| rng.gen_range(0..(bytes.len() as i64)) as usize)
            .collect();
        cuts.extend([0, 1, bytes.len() - 1]);
        for cut in cuts {
            match decode_snapshot(&bytes[..cut]) {
                Err(
                    PersistError::Format(_)
                    | PersistError::Checksum { .. }
                    | PersistError::Version { .. },
                ) => {}
                Err(e) => panic!("cut {cut}: unexpected error kind {e}"),
                Ok(_) => panic!("cut {cut}: truncated snapshot decoded successfully"),
            }
        }
    }

    #[test]
    fn fuzz_reader_on_random_bytes_never_panics_or_over_reads() {
        let mut rng = pvc_prob::SeededRng::seed_from_u64(0x000d_ecaf);
        for _ in 0..300 {
            let len = rng.gen_range(0..96usize);
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut r = Reader::new(&data);
            for _ in 0..24 {
                let before = r.remaining();
                // Every take either succeeds consuming at most what is there,
                // or returns a typed error — never panics.
                let consumed_ok = match rng.gen_range(0..8usize) {
                    0 => r.take_u8().is_ok(),
                    1 => r.take_u32().is_ok(),
                    2 => r.take_u64().is_ok(),
                    3 => r.take_i64().is_ok(),
                    4 => r.take_f64().is_ok(),
                    5 => r.take_bytes().is_ok(),
                    6 => r.take_str().is_ok(),
                    _ => r.take_count(8).is_ok(),
                };
                assert!(r.remaining() <= before);
                if !consumed_ok && r.remaining() == 0 {
                    break;
                }
            }
        }
    }

    #[test]
    fn roundtrip_into_fresh_store_is_identity() {
        let (_vt, interner, cache) = populated();
        let tables = vec![("S".to_string(), 0x1111), ("PS".to_string(), 0x2222)];
        let bytes = encode_snapshot(&interner, &cache, 0xfeed, &tables, Some(b"hello"));
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.fingerprint(), 0xfeed);
        assert_eq!(snap.table_fingerprints(), &tables[..]);
        assert_eq!(snap.extra(), Some(&b"hello"[..]));
        snap.verify_fingerprint(0xfeed).unwrap();
        assert!(matches!(
            snap.verify_fingerprint(0xbeef),
            Err(PersistError::Fingerprint { .. })
        ));
        let mut interner2 = Interner::new();
        let mut cache2 = CompilationCache::new(snap.config());
        let stats = snap.restore_into(&mut interner2, &mut cache2).unwrap();
        assert_eq!(stats.interned_exprs, interner.len());
        assert_eq!(stats.interned_aggs, interner.agg_len());
        // A fresh replay assigns identical ids, so the second snapshot is
        // byte-identical (counters are not persisted).
        let bytes2 = encode_snapshot(&interner2, &cache2, 0xfeed, &tables, Some(b"hello"));
        assert_eq!(bytes, bytes2);
        assert_eq!(cache2.semiring_entries(), cache.semiring_entries());
        assert_eq!(cache2.aggregate_entries(), cache.aggregate_entries());
        assert_eq!(cache2.arena_entries(), cache.arena_entries());
    }

    #[test]
    fn restore_composes_with_a_live_arena() {
        let (vt, interner, cache) = populated();
        let bytes = encode_snapshot(&interner, &cache, 1, &[], None);
        // The live store already interned something unrelated, shifting ids.
        let mut live_interner = Interner::new();
        let mut live_cache = CompilationCache::default();
        live_interner.intern(&(v(40) + v(41) * v(42)));
        let offset = live_interner.len();
        let snap = decode_snapshot(&bytes).unwrap();
        snap.restore_into(&mut live_interner, &mut live_cache)
            .unwrap();
        assert!(live_interner.len() > offset);
        // A live re-intern of a snapshotted expression lands on a cache entry.
        let expr =
            SemiringExpr::Var(Var(0)) * (SemiringExpr::Var(Var(1)) + SemiringExpr::Var(Var(2)));
        let id = live_interner.intern(&expr);
        let mut eval = CachedEvaluator::new(
            &mut live_interner,
            &mut live_cache,
            &vt,
            SemiringKind::Bool,
            CompileOptions::default(),
            99,
        );
        let restored = eval.semiring_distribution(id).unwrap();
        assert_eq!(live_cache.counters().hits, 1);
        assert_eq!(live_cache.counters().misses, 0);
        // And the value equals the one the original cache held.
        let mut original_interner = Interner::new();
        let mut original_cache = CompilationCache::default();
        let oid = original_interner.intern(&expr);
        let mut oeval = CachedEvaluator::new(
            &mut original_interner,
            &mut original_cache,
            &vt,
            SemiringKind::Bool,
            CompileOptions::default(),
            99,
        );
        let reference = oeval.semiring_distribution(oid).unwrap();
        assert_eq!(restored, reference);
    }

    #[test]
    fn corrupted_snapshots_surface_typed_errors() {
        let (_vt, interner, cache) = populated();
        let bytes = encode_snapshot(&interner, &cache, 7, &[], None);
        // Not a snapshot at all.
        assert!(matches!(
            decode_snapshot(b"short"),
            Err(PersistError::Format(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_snapshot(&bad_magic),
            Err(PersistError::Format(_))
        ));
        // Wrong version (checksum fixed up so the version gate fires first).
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        let n = bad_version.len();
        let fixed = fnv64(&bad_version[..n - 8]);
        bad_version[n - 8..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bad_version),
            Err(PersistError::Version {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
        // Flipped payload byte: checksum mismatch.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&corrupt),
            Err(PersistError::Checksum { .. })
        ));
        // Truncation: checksum (or framing) failure, never a panic.
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            assert!(decode_snapshot(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn out_of_range_variables_are_refused() {
        let (vt, interner, cache) = populated();
        let bytes = encode_snapshot(&interner, &cache, 7, &[], None);
        let snap = decode_snapshot(&bytes).unwrap();
        // The populated store uses 6 variables (ids 0..=5).
        snap.verify_variables(vt.len()).unwrap();
        assert!(matches!(
            snap.verify_variables(3),
            Err(PersistError::Format(ref m)) if m.contains("variable")
        ));
        assert!(snap.verify_variables(0).is_err());
    }

    #[test]
    fn restore_honours_target_lru_bounds() {
        let (_vt, interner, cache) = populated();
        let bytes = encode_snapshot(&interner, &cache, 7, &[], None);
        let snap = decode_snapshot(&bytes).unwrap();
        let mut interner2 = Interner::new();
        let mut cache2 = CompilationCache::new(CacheConfig {
            max_entries: 1,
            max_bytes: usize::MAX,
        });
        snap.restore_into(&mut interner2, &mut cache2).unwrap();
        assert!(cache2.semiring_entries() <= 1);
        assert!(cache2.counters().evictions > 0);
    }

    #[test]
    fn empty_store_roundtrips() {
        let interner = Interner::new();
        let cache = CompilationCache::default();
        let bytes = encode_snapshot(&interner, &cache, 0, &[], None);
        let snap = decode_snapshot(&bytes).unwrap();
        let mut interner2 = Interner::new();
        let mut cache2 = CompilationCache::default();
        let stats = snap.restore_into(&mut interner2, &mut cache2).unwrap();
        assert_eq!(stats, RestoreStats::default());
        assert!(interner2.is_empty());
    }
}
