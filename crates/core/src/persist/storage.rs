//! Pluggable file storage for the persist layer: a small [`Storage`] trait that
//! every snapshot and write-ahead-log path goes through, with a production
//! [`FsStorage`] and a deterministic fault-injecting [`FaultyStorage`] for tests.
//!
//! The trait is deliberately **path-based** (no open handles): each operation
//! names the file it touches, which keeps implementations trivial and makes the
//! fault injector able to interpose on *every* byte that would reach disk —
//! short writes, `ErrorKind::Interrupted` / `ErrorKind::Other` failures, torn
//! renames that strand a `.tmp.<pid>` sibling, and stale temp litter. Every
//! fault is drawn from a seeded [`SeededRng`], so a failing sequence replays
//! bit-identically from its seed.

use pvc_prob::SeededRng;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The operations the persist layer needs from a file system.
///
/// Implementations must be `Send + Sync`: the serve runtime shares one storage
/// handle between the snapshot thread and the request path.
pub trait Storage: std::fmt::Debug + Send + Sync {
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Write `bytes` to `path` **atomically**: stage into a sibling
    /// `<name>.tmp.<pid>` file, then `rename` into place. After a crash the
    /// destination holds either the previous complete image or the new one,
    /// never a torn file.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to the file at `path`, creating it if missing. When
    /// `sync` is true the data (and on creation, ideally the directory entry)
    /// is flushed with `fsync` before returning.
    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()>;

    /// `fsync` the file at `path` (used by [`Durability::Batch`] flushes).
    ///
    /// [`Durability::Batch`]: super::wal::Durability::Batch
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Truncate the file at `path` to `len` bytes (torn-tail amputation).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    /// List the entries of directory `dir` (non-recursive, files only).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The suffix that marks an in-flight atomic-write staging file: the staged
/// name is `<file_name>.tmp.<pid>`. [`is_stale_temp`] recognises the pattern so
/// startup can sweep litter left by a crashed predecessor process.
pub const TEMP_INFIX: &str = ".tmp.";

/// Whether `path` looks like an atomic-write staging file (`*.tmp.<pid>`)
/// regardless of which process id wrote it.
pub fn is_stale_temp(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    match name.rfind(TEMP_INFIX) {
        Some(at) => {
            let digits = &name[at + TEMP_INFIX.len()..];
            !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

fn temp_sibling(path: &Path) -> io::Result<PathBuf> {
    let mut file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("path {} has no file name", path.display()),
            )
        })?
        .to_os_string();
    file_name.push(format!("{}{}", TEMP_INFIX, std::process::id()));
    Ok(path.with_file_name(file_name))
}

/// The production [`Storage`]: plain `std::fs`, atomic publication via a
/// sibling temp file + `rename`, `fsync` through `File::sync_all`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStorage;

impl FsStorage {
    /// A shared handle to the process-wide default storage.
    pub fn shared() -> Arc<dyn Storage> {
        Arc::new(FsStorage)
    }
}

impl Storage for FsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = temp_sibling(path)?;
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path).map_err(|e| {
            // Leave no stray temp file behind a failed rename.
            let _ = std::fs::remove_file(&tmp);
            e
        })
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)?;
        if sync {
            file.sync_all()?;
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        OpenOptions::new().append(true).open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Which faults a [`FaultyStorage`] may inject, as per-operation probabilities
/// in `[0, 1]`. Every draw comes from the seeded generator, so a given seed
/// yields one reproducible fault schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability that an `append` writes only a prefix of the record and
    /// fails with [`io::ErrorKind::Interrupted`] — a torn WAL tail.
    pub short_append: f64,
    /// Probability that a `write_atomic` fails after staging the temp file but
    /// before the `rename` — a stranded `.tmp.<pid>` sibling plus an
    /// [`io::ErrorKind::Other`] error.
    pub torn_rename: f64,
    /// Probability that any mutating operation fails cleanly (no bytes
    /// reach disk) with [`io::ErrorKind::Interrupted`] — a transient error the
    /// caller is expected to retry.
    pub transient: f64,
    /// Probability that a `write_atomic` additionally leaves a stale
    /// `.tmp.<pid>` litter file (as if an unrelated crashed process had died
    /// mid-stage) even when the write itself succeeds.
    pub stale_litter: f64,
}

impl FaultConfig {
    /// No faults at all (behaves exactly like [`FsStorage`]).
    pub fn none() -> Self {
        FaultConfig {
            short_append: 0.0,
            torn_rename: 0.0,
            transient: 0.0,
            stale_litter: 0.0,
        }
    }
}

/// Counters of the faults a [`FaultyStorage`] actually injected, so tests can
/// assert the schedule exercised the paths they care about.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends that tore mid-record.
    pub short_appends: u64,
    /// Atomic writes that failed between stage and rename.
    pub torn_renames: u64,
    /// Clean transient failures.
    pub transients: u64,
    /// Stale `.tmp.<pid>` files planted next to successful writes.
    pub stale_litter: u64,
}

/// A deterministic fault-injecting [`Storage`] for tests: wraps [`FsStorage`]
/// and, driven by a [`SeededRng`], injects short writes, transient
/// `Interrupted` failures, torn renames, and stale `.tmp.<pid>` litter
/// according to a [`FaultConfig`]. Reads are never corrupted — corruption of
/// *images* is the fuzz tests' job; this type models a misbehaving disk on the
/// write path.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: FsStorage,
    rng: Mutex<SeededRng>,
    config: FaultConfig,
    short_appends: AtomicU64,
    torn_renames: AtomicU64,
    transients: AtomicU64,
    stale_litter: AtomicU64,
}

impl FaultyStorage {
    /// A fault injector with the given seed and fault probabilities.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultyStorage {
            inner: FsStorage,
            rng: Mutex::new(SeededRng::seed_from_u64(seed)),
            config,
            short_appends: AtomicU64::new(0),
            torn_renames: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            stale_litter: AtomicU64::new(0),
        }
    }

    /// What was injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            short_appends: self.short_appends.load(Ordering::Relaxed),
            torn_renames: self.torn_renames.load(Ordering::Relaxed),
            transients: self.transients.load(Ordering::Relaxed),
            stale_litter: self.stale_litter.load(Ordering::Relaxed),
        }
    }

    fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().expect("rng lock").next_f64() < p
    }

    fn transient_err(&self, what: &str) -> io::Error {
        self.transients.fetch_add(1, Ordering::Relaxed);
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient fault during {what}"),
        )
    }
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.roll(self.config.transient) {
            return Err(self.transient_err("write_atomic"));
        }
        if self.roll(self.config.torn_rename) {
            // Stage the temp file, then "crash" before the rename: the litter
            // stays behind and the destination is untouched.
            let tmp = temp_sibling(path)?;
            std::fs::write(&tmp, bytes)?;
            self.torn_renames.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(
                "injected torn rename (temp file stranded)",
            ));
        }
        if self.roll(self.config.stale_litter) {
            // Plant litter as if a crashed sibling process (pid 0 never runs)
            // had died mid-stage.
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                let litter = path.with_file_name(format!("{name}{TEMP_INFIX}0"));
                let _ = std::fs::write(litter, b"stale");
                self.stale_litter.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.write_atomic(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        if self.roll(self.config.transient) {
            return Err(self.transient_err("append"));
        }
        if self.roll(self.config.short_append) && bytes.len() > 1 {
            // Tear the record: persist only a prefix, then fail.
            let cut = {
                let span = bytes.len() as i64;
                self.rng.lock().expect("rng lock").gen_range(1..span) as usize
            };
            self.inner.append(path, &bytes[..cut], false)?;
            self.short_appends.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected short append ({cut} of {} bytes)", bytes.len()),
            ));
        }
        self.inner.append(path, bytes, sync)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.roll(self.config.transient) {
            return Err(self.transient_err("sync"));
        }
        self.inner.sync_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(dir)
    }
}

/// Remove every stale `*.tmp.<pid>` staging file in `dir`, returning how many
/// were swept. A missing directory sweeps nothing. Called by `Server::start`
/// (and usable by any embedder) so litter from a crashed predecessor does not
/// accumulate forever.
pub fn sweep_stale_temps(storage: &dyn Storage, dir: &Path) -> io::Result<usize> {
    let entries = match storage.list_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for path in entries {
        if is_stale_temp(&path) {
            storage.remove(&path)?;
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pvc-storage-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn fs_storage_roundtrip_and_append() {
        let dir = scratch("fs");
        let file = dir.join("a.bin");
        let s = FsStorage;
        s.write_atomic(&file, b"hello").unwrap();
        assert_eq!(s.read(&file).unwrap(), b"hello");
        s.append(&file, b" world", true).unwrap();
        assert_eq!(s.read(&file).unwrap(), b"hello world");
        s.truncate(&file, 5).unwrap();
        assert_eq!(s.read(&file).unwrap(), b"hello");
        assert!(s.exists(&file));
        s.remove(&file).unwrap();
        assert!(!s.exists(&file));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_temp_recognition() {
        assert!(is_stale_temp(Path::new("/x/t0.snap.tmp.12345")));
        assert!(is_stale_temp(Path::new("t0.wal.tmp.1")));
        assert!(!is_stale_temp(Path::new("/x/t0.snap")));
        assert!(!is_stale_temp(Path::new("/x/t0.snap.tmp.")));
        assert!(!is_stale_temp(Path::new("/x/t0.snap.tmp.abc")));
    }

    #[test]
    fn torn_rename_strands_temp_and_keeps_destination() {
        let dir = scratch("torn");
        let file = dir.join("t.snap");
        FsStorage.write_atomic(&file, b"old").unwrap();
        let faulty = FaultyStorage::new(
            7,
            FaultConfig {
                torn_rename: 1.0,
                ..FaultConfig::none()
            },
        );
        let err = faulty.write_atomic(&file, b"new").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(std::fs::read(&file).unwrap(), b"old");
        let litter: Vec<_> = FsStorage
            .list_dir(&dir)
            .unwrap()
            .into_iter()
            .filter(|p| is_stale_temp(p))
            .collect();
        assert_eq!(litter.len(), 1);
        assert_eq!(faulty.stats().torn_renames, 1);
        assert_eq!(sweep_stale_temps(&FsStorage, &dir).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_append_persists_only_a_prefix() {
        let dir = scratch("short");
        let file = dir.join("t.wal");
        let faulty = FaultyStorage::new(
            11,
            FaultConfig {
                short_append: 1.0,
                ..FaultConfig::none()
            },
        );
        let record = vec![0xABu8; 64];
        let err = faulty.append(&file, &record, true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let on_disk = std::fs::read(&file).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < record.len());
        assert_eq!(faulty.stats().short_appends, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            transient: 0.5,
            ..FaultConfig::none()
        };
        let dir = scratch("det");
        let file = dir.join("t.bin");
        let run = |seed: u64| {
            let s = FaultyStorage::new(seed, cfg);
            (0..32)
                .map(|_| s.write_atomic(&file, b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
