//! # pvc-core
//!
//! The paper's primary contribution (§5): **decomposition trees (d-trees)** and
//! the compilation of arbitrary semiring / semimodule expressions into them
//! (Algorithm 1), with bottom-up probability computation (Theorem 2), pruning of
//! conditional expressions, and joint-distribution compilation — plus the
//! serving-system layers built around the compiled artifacts: the bounded
//! [`cache`] (memoised distributions and flattened [`arena`] evaluators under
//! canonical ids, shareable across threads and engines via
//! [`SharedArtifacts`]), the zero-dependency worker pool ([`parallel`]), and
//! [`persist`] — versioned binary snapshots that let a restarted process come
//! back warm instead of recompiling.
//!
//! The typical end-to-end use is one of the convenience functions:
//!
//! ```
//! use pvc_algebra::{AggOp, MonoidValue, SemiringKind};
//! use pvc_core::{confidence, semimodule_distribution};
//! use pvc_expr::{SemimoduleExpr, SemiringExpr, VarTable};
//!
//! // Two uncertain price offers; what is the distribution of the minimum price?
//! let mut vars = VarTable::new();
//! let offer_a = vars.boolean("offer_a", 0.8);
//! let offer_b = vars.boolean("offer_b", 0.5);
//! let min_price = SemimoduleExpr::from_terms(
//!     AggOp::Min,
//!     vec![
//!         (SemiringExpr::Var(offer_a), MonoidValue::Fin(10)),
//!         (SemiringExpr::Var(offer_b), MonoidValue::Fin(7)),
//!     ],
//! );
//! let dist = semimodule_distribution(&min_price, &vars, SemiringKind::Bool);
//! assert!((dist.prob(&MonoidValue::Fin(7)) - 0.5).abs() < 1e-9);
//!
//! // The probability that at least one offer exists.
//! let any = SemiringExpr::Var(offer_a) + SemiringExpr::Var(offer_b);
//! assert!((confidence(&any, &vars, SemiringKind::Bool) - 0.9).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod compile;
pub mod joint;
pub mod node;
pub mod obs;
pub mod parallel;
pub mod persist;
pub mod prune;

pub use arena::DTreeArena;
pub use cache::{
    confidence_of, CacheConfig, CacheCounters, CachedEvaluator, CompactionStats, CompilationCache,
    EvalError, EvictionStats, SharedArtifacts,
};
pub use compile::{
    compile_semimodule, compile_semiring, BudgetExceeded, CompileOptions, CompileStats, Compiler,
};
pub use joint::{joint_distribution, ratio_distribution};
pub use node::{DTree, DTreeError};
pub use obs::{
    Counter, ExecutionProfile, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, ProfileNode,
    SpanGuard, Trace,
};
pub use parallel::{parallel_map, resolve_threads, OrderedReassembly, WorkerPool};
pub use persist::storage::{FaultConfig, FaultyStorage, FsStorage, Storage};
pub use persist::wal::{Durability, WalRecord, WalRecovery, WalWriter};
pub use persist::{PersistError, RestoreStats, Snapshot};
pub use prune::{prune_against_constant, prune_conditional, PruneResult};

use pvc_algebra::SemiringKind;
use pvc_expr::{SemimoduleExpr, SemiringExpr, VarTable};
use pvc_prob::{MonoidDist, SemiringDist};

/// Compile a semiring expression and compute its exact probability distribution.
pub fn semiring_distribution(
    expr: &SemiringExpr,
    table: &VarTable,
    kind: SemiringKind,
) -> SemiringDist {
    compile_semiring(expr, table, kind)
        .semiring_distribution(table, kind)
        .expect("compiled semiring tree yields semiring values")
}

/// Compile a semimodule expression and compute its exact probability distribution.
pub fn semimodule_distribution(
    expr: &SemimoduleExpr,
    table: &VarTable,
    kind: SemiringKind,
) -> MonoidDist {
    compile_semimodule(expr, table, kind)
        .monoid_distribution(table, kind)
        .expect("compiled semimodule tree yields monoid values")
}

/// The probability that a semiring expression does not evaluate to `0_S` — the tuple
/// confidence of a pvc-table tuple annotated with this expression.
pub fn confidence(expr: &SemiringExpr, table: &VarTable, kind: SemiringKind) -> f64 {
    semiring_distribution(expr, table, kind)
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, MonoidValue::Fin};
    use pvc_expr::oracle;

    #[test]
    fn convenience_wrappers_agree_with_oracle() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.2);
        let b = vt.boolean("b", 0.7);
        let c = vt.boolean("c", 0.5);
        let expr = SemiringExpr::Var(a) * (SemiringExpr::Var(b) + SemiringExpr::Var(c));
        let dist = semiring_distribution(&expr, &vt, SemiringKind::Bool);
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        assert!(
            (confidence(&expr, &vt, SemiringKind::Bool)
                - oracle::confidence_by_enumeration(&expr, &vt, SemiringKind::Bool))
            .abs()
                < 1e-9
        );

        let alpha = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (SemiringExpr::Var(a), Fin(3)),
                (SemiringExpr::Var(b), Fin(8)),
            ],
        );
        let dist = semimodule_distribution(&alpha, &vt, SemiringKind::Bool);
        let oracle_dist = oracle::semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }
}
