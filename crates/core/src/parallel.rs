//! A minimal `std::thread`-based worker pool for embarrassingly parallel,
//! deterministic workloads — no external dependencies, matching the workspace's
//! zero-dependency policy.
//!
//! The paper's evaluation pipeline compiles **one d-tree per result tuple** (§5, §7):
//! tuples never share mutable state beyond the compilation cache, so per-tuple work
//! is an independently schedulable unit. The helpers here exploit that:
//!
//! * [`resolve_threads`] maps a user-facing thread knob (`0` = auto) to a concrete
//!   worker count;
//! * [`parallel_map`] fans a slice out over scoped workers and returns results **in
//!   input order**, so parallel output is bit-identical to sequential output;
//! * [`OrderedReassembly`] re-establishes input order over an out-of-order stream of
//!   `(index, item)` pairs — the building block for streaming consumers that must
//!   observe a deterministic tuple order while workers finish in any order.
//!
//! Determinism contract: as long as the mapped function is a pure function of its
//! input (which per-tuple compilation is — cache hits only ever substitute a value
//! that the computation would have produced anyway), the output of `parallel_map`
//! and of an [`OrderedReassembly`]-driven stream does not depend on the number of
//! workers or on scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a user-facing thread-count knob to a concrete worker count.
///
/// `0` selects the machine's available parallelism (falling back to 1 when it
/// cannot be determined); any other value is used as-is. The result is always at
/// least 1 and never exceeds `work_items` (spawning more workers than items only
/// costs thread start-up time).
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, work_items.max(1))
}

/// Map `f` over `items` using up to `threads` scoped workers, returning the results
/// **in input order**. Work is distributed dynamically (an atomic cursor), so
/// irregular per-item cost balances across workers.
///
/// With `threads <= 1` the function degenerates to a plain in-place loop — no
/// threads are spawned, so cheap workloads pay no overhead.
///
/// Errors: the first failing index (in *input* order, not completion order) wins,
/// mirroring what a sequential loop would report; remaining items may or may not
/// have been processed. Panics in `f` propagate.
pub fn parallel_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                let failed = result.is_err();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                // Later items may depend on nothing, but once an error exists the
                // caller will discard everything after it; keep going anyway so the
                // in-order first error is deterministic (another worker may be
                // processing an *earlier* index that also fails).
                let _ = failed;
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every index below the cursor was processed"),
        }
    }
    Ok(out)
}

/// Re-establish input order over an out-of-order stream of `(index, item)` pairs.
///
/// Workers finishing in arbitrary order feed `push`; the consumer drains `pop`,
/// which only yields item `k` once items `0..k` have been yielded. Out-of-order
/// arrivals are buffered (bounded by how far ahead the workers can run, which a
/// bounded channel in turn limits).
#[derive(Debug)]
pub struct OrderedReassembly<T> {
    next: usize,
    pending: std::collections::BTreeMap<usize, T>,
}

impl<T> OrderedReassembly<T> {
    /// An empty buffer expecting index 0 first.
    pub fn new() -> Self {
        OrderedReassembly {
            next: 0,
            pending: std::collections::BTreeMap::new(),
        }
    }

    /// Record a completed item. Indices must not repeat.
    pub fn push(&mut self, index: usize, item: T) {
        debug_assert!(index >= self.next, "index {index} already emitted");
        self.pending.insert(index, item);
    }

    /// The next in-order item, if it has arrived.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(item)
    }

    /// The index the next [`pop`](Self::pop) will yield.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Number of buffered out-of-order items.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<T> Default for OrderedReassembly<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 0), 1);
        assert!(resolve_threads(0, 100) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, &items, |&x| Ok::<_, ()>(x * x)).unwrap();
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i * i) as u64);
            }
        }
    }

    #[test]
    fn parallel_map_matches_sequential_exactly() {
        // The determinism contract: identical output for any worker count.
        let items: Vec<f64> = (0..100).map(|i| 0.1 * i as f64).collect();
        let f = |x: &f64| Ok::<_, ()>((x.sin() * x.cos()).to_bits());
        let seq = parallel_map(1, &items, f).unwrap();
        let par = parallel_map(4, &items, f).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_map_reports_first_error_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 7] {
            let err = parallel_map(
                threads,
                &items,
                |&x| {
                    if x % 10 == 7 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, 7, "threads={threads}");
        }
    }

    #[test]
    fn ordered_reassembly_reorders() {
        let mut r = OrderedReassembly::new();
        r.push(2, "c");
        r.push(0, "a");
        assert_eq!(r.pop(), Some("a"));
        assert_eq!(r.pop(), None); // 1 has not arrived
        assert_eq!(r.buffered(), 1);
        r.push(1, "b");
        assert_eq!(r.pop(), Some("b"));
        assert_eq!(r.pop(), Some("c"));
        assert_eq!(r.pop(), None);
        assert_eq!(r.next_index(), 3);
    }
}
