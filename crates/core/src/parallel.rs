//! A minimal `std::thread`-based worker pool for embarrassingly parallel,
//! deterministic workloads — no external dependencies, matching the workspace's
//! zero-dependency policy.
//!
//! The paper's evaluation pipeline compiles **one d-tree per result tuple** (§5, §7):
//! tuples never share mutable state beyond the compilation cache, so per-tuple work
//! is an independently schedulable unit. The helpers here exploit that:
//!
//! * [`resolve_threads`] maps a user-facing thread knob (`0` = auto) to a concrete
//!   worker count;
//! * [`parallel_map`] fans a slice out over scoped workers and returns results **in
//!   input order**, so parallel output is bit-identical to sequential output;
//! * [`OrderedReassembly`] re-establishes input order over an out-of-order stream of
//!   `(index, item)` pairs — the building block for streaming consumers that must
//!   observe a deterministic tuple order while workers finish in any order;
//! * [`WorkerPool`] is the **persistent** counterpart to the per-execution scoped
//!   workers above: a fixed set of long-lived threads pulling jobs from a shared
//!   queue, so a serving process pays thread start-up once per process instead of
//!   once per query (see the `pvc-serve` crate).
//!
//! Determinism contract: as long as the mapped function is a pure function of its
//! input (which per-tuple compilation is — cache hits only ever substitute a value
//! that the computation would have produced anyway), the output of `parallel_map`
//! and of an [`OrderedReassembly`]-driven stream does not depend on the number of
//! workers or on scheduling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Resolve a user-facing thread-count knob to a concrete worker count.
///
/// `0` selects the machine's available parallelism (falling back to 1 when it
/// cannot be determined); any other value is used as-is. The result is always at
/// least 1 and never exceeds `work_items` (spawning more workers than items only
/// costs thread start-up time).
pub fn resolve_threads(requested: usize, work_items: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, work_items.max(1))
}

/// Map `f` over `items` using up to `threads` scoped workers, returning the results
/// **in input order**. Work is distributed dynamically (an atomic cursor), so
/// irregular per-item cost balances across workers.
///
/// With `threads <= 1` the function degenerates to a plain in-place loop — no
/// threads are spawned, so cheap workloads pay no overhead.
///
/// Errors: the first failing index (in *input* order, not completion order) wins,
/// mirroring what a sequential loop would report; remaining items may or may not
/// have been processed. Panics in `f` propagate.
pub fn parallel_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, E>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                let failed = result.is_err();
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                // Later items may depend on nothing, but once an error exists the
                // caller will discard everything after it; keep going anyway so the
                // in-order first error is deterministic (another worker may be
                // processing an *earlier* index that also fails).
                let _ = failed;
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every index below the cursor was processed"),
        }
    }
    Ok(out)
}

/// Re-establish input order over an out-of-order stream of `(index, item)` pairs.
///
/// Workers finishing in arbitrary order feed `push`; the consumer drains `pop`,
/// which only yields item `k` once items `0..k` have been yielded. Out-of-order
/// arrivals are buffered (bounded by how far ahead the workers can run, which a
/// bounded channel in turn limits).
#[derive(Debug)]
pub struct OrderedReassembly<T> {
    next: usize,
    pending: std::collections::BTreeMap<usize, T>,
}

impl<T> OrderedReassembly<T> {
    /// An empty buffer expecting index 0 first.
    pub fn new() -> Self {
        OrderedReassembly {
            next: 0,
            pending: std::collections::BTreeMap::new(),
        }
    }

    /// Record a completed item. Indices must not repeat.
    pub fn push(&mut self, index: usize, item: T) {
        debug_assert!(index >= self.next, "index {index} already emitted");
        self.pending.insert(index, item);
    }

    /// The next in-order item, if it has arrived.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(item)
    }

    /// The index the next [`pop`](Self::pop) will yield.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// Number of buffered out-of-order items.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

impl<T> Default for OrderedReassembly<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A unit of work submitted to a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between a [`WorkerPool`] handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Jobs fully executed (including ones that panicked), for observability.
    executed: AtomicU64,
    /// Jobs whose closure panicked. The panic is contained — the worker thread
    /// survives and keeps serving — but callers can detect the bug here.
    panicked: AtomicU64,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("queued", &self.queue.lock().map(|q| q.len()).unwrap_or(0))
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .field("executed", &self.executed.load(Ordering::Relaxed))
            .field("panicked", &self.panicked.load(Ordering::Relaxed))
            .finish()
    }
}

/// A **persistent** worker pool: a fixed set of long-lived threads executing
/// submitted jobs in FIFO order.
///
/// [`parallel_map`] and the per-execution streaming workers in `pvc-db` spawn (and
/// join) their threads once per execution — the right trade-off for a library
/// call, and measurably wrong for a serving process handling thousands of small
/// requests. A `WorkerPool` is created once, reused by every execution
/// (`EvalOptions::with_pool` in `pvc-db` routes the per-tuple pipeline onto it),
/// and joined exactly once at shutdown.
///
/// Determinism: the pool only changes *where* a job runs, never what it computes;
/// executions routed through a pool are bit-identical to per-call spawning (pinned
/// by `pool_reuse_is_bit_identical` in `pvc-db`).
///
/// Panic containment: a panicking job is caught, counted in
/// [`panicked_jobs`](Self::panicked_jobs), and the worker thread keeps serving —
/// one buggy request cannot take capacity away from a long-lived server.
///
/// Shutdown: [`shutdown`](Self::shutdown) (or `Drop`) marks the pool closed,
/// wakes every idle worker and **joins them all**; jobs still queued at that
/// point are executed first (drain semantics), so no submitted work is silently
/// discarded.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Start a pool with `threads` workers (`0` = one per available core, the
    /// serving default). Fails only when the OS refuses to spawn threads; workers
    /// already started are joined before the error is returned.
    pub fn new(threads: usize) -> std::io::Result<WorkerPool> {
        let threads = resolve_threads(threads, usize::MAX);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("pvc-pool-worker-{i}"))
                .spawn(move || pool_worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.work_ready.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(WorkerPool {
            shared,
            workers,
            threads,
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a job. Jobs run in FIFO order across the workers; a job submitted
    /// after [`shutdown`](Self::shutdown) began is dropped without running (the
    /// pool can no longer guarantee a worker will pick it up).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        // With metrics on, wrap the job to time its queue wait (enqueue to
        // start) and run time; when disabled the job is boxed exactly as
        // before, so the hot path pays one relaxed flag load.
        let metrics = crate::obs::core_metrics();
        let job: Job = if metrics.pool_queue_wait_us.is_enabled() {
            let enqueued = std::time::Instant::now();
            Box::new(move || {
                let metrics = crate::obs::core_metrics();
                metrics
                    .pool_queue_wait_us
                    .record(enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let started = std::time::Instant::now();
                job();
                metrics
                    .pool_run_us
                    .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            })
        } else {
            Box::new(job)
        };
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        queue.push_back(job);
        drop(queue);
        self.shared.work_ready.notify_one();
    }

    /// Jobs fully executed so far (including panicked ones).
    pub fn executed_jobs(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked (the workers survived).
    pub fn panicked_jobs(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queued_jobs(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").len()
    }

    /// Drain the queue, stop and **join** every worker. Queued jobs run to
    /// completion first. Called implicitly on `Drop`; the explicit form exists so
    /// servers can put "all workers joined" in their shutdown path visibly.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn pool_worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        // Contain panics: the job owner observes failures through its own channel
        // (e.g. the TupleStream surfaces Error::Worker); the pool thread must
        // survive to serve the next request.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 0), 1);
        assert!(resolve_threads(0, 100) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, &items, |&x| Ok::<_, ()>(x * x)).unwrap();
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i * i) as u64);
            }
        }
    }

    #[test]
    fn parallel_map_matches_sequential_exactly() {
        // The determinism contract: identical output for any worker count.
        let items: Vec<f64> = (0..100).map(|i| 0.1 * i as f64).collect();
        let f = |x: &f64| Ok::<_, ()>((x.sin() * x.cos()).to_bits());
        let seq = parallel_map(1, &items, f).unwrap();
        let par = parallel_map(4, &items, f).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_map_reports_first_error_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 7] {
            let err = parallel_map(
                threads,
                &items,
                |&x| {
                    if x % 10 == 7 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, 7, "threads={threads}");
        }
    }

    #[test]
    fn worker_pool_executes_jobs_and_joins_on_shutdown() {
        let pool = WorkerPool::new(3).unwrap();
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Shutdown drains the queue: every submitted job ran exactly once.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2).unwrap();
        let ok = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let ok = Arc::clone(&ok);
            pool.execute(move || {
                if i % 5 == 0 {
                    panic!("job bug");
                }
                ok.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait for the queue to drain without shutting down: the panicking jobs
        // must not have killed the workers.
        while pool.executed_jobs() < 20 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked_jobs(), 4);
        assert_eq!(ok.load(Ordering::Relaxed), 16);
        // The pool still serves new jobs after the panics.
        let after = Arc::new(AtomicUsize::new(0));
        let after_clone = Arc::clone(&after);
        pool.execute(move || {
            after_clone.store(7, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(after.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn worker_pool_resolves_zero_to_per_core() {
        let pool = WorkerPool::new(0).unwrap();
        assert!(pool.threads() >= 1);
        assert_eq!(pool.queued_jobs(), 0);
    }

    #[test]
    fn ordered_reassembly_reorders() {
        let mut r = OrderedReassembly::new();
        r.push(2, "c");
        r.push(0, "a");
        assert_eq!(r.pop(), Some("a"));
        assert_eq!(r.pop(), None); // 1 has not arrived
        assert_eq!(r.buffered(), 1);
        r.push(1, "b");
        assert_eq!(r.pop(), Some("b"));
        assert_eq!(r.pop(), Some("c"));
        assert_eq!(r.pop(), None);
        assert_eq!(r.next_index(), 3);
    }
}
