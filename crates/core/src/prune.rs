//! Pruning rules for conditional expressions (§5, "Pruning Conditional Expressions").
//!
//! Before compiling a conditional `[α θ β]` the engine rewrites it into a simpler but
//! equivalent conditional in which terms that cannot influence the truth value are
//! removed, or the whole conditional is replaced by a constant. Pruning is what makes
//! the MIN/MAX curves of Experiment A flat for small thresholds and what avoids
//! materialising exponential SUM distributions when the bound already decides the
//! comparison.
//!
//! Only *equivalence-preserving* rules are applied; every rule is validated against
//! the brute-force oracle in the tests below.

use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind};
use pvc_expr::{SemimoduleExpr, SemiringExpr};

/// The outcome of pruning a conditional expression `[α θ m]` against a constant bound.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneResult {
    /// The conditional is always true: replace it by `1_S`.
    AlwaysTrue,
    /// The conditional is always false: replace it by `0_S`.
    AlwaysFalse,
    /// The conditional was (possibly) simplified to a new left-hand side.
    Simplified(SemimoduleExpr),
}

/// Prune a conditional `[α θ m]` whose right-hand side is the constant `m`.
///
/// Rules implemented (symmetric MAX variants mirror the MIN ones):
///
/// * **MIN, θ ∈ {≤, <, =}**: terms whose value exceeds the bound can never be the
///   minimum that decides the comparison, so they are dropped
///   (`[Σ_i Φ_i⊗m_i ≤ m] ≡ [Σ_{i: m_i ≤ m} Φ_i⊗m_i ≤ m]`).
/// * **MIN, θ ∈ {≥, >}**: dually, only terms whose value *violates* the bound
///   matter — `min ≥ m` holds iff no term with value < m is present — so terms
///   already satisfying the bound are dropped
///   (`[Σ_i Φ_i⊗m_i ≥ m] ≡ [Σ_{i: m_i < m} Φ_i⊗m_i ≥ m]`); if no violating term
///   remains the conditional is constantly true, and a *guaranteed* violator
///   (constant non-zero coefficient) makes it constantly false.
/// * **MAX, θ ∈ {≥, >, =}**: dually to MIN/≤, terms below the bound are dropped.
/// * **MAX, θ ∈ {≤, <}**: dually to MIN/≥, terms at or below the bound are
///   dropped; no remaining violator ⇒ constantly true.
/// * **SUM/COUNT with non-negative term values**: if even the sum of *all* values
///   satisfies (resp. cannot reach) the bound, the conditional is constantly true
///   (resp. false).
pub fn prune_against_constant(
    alpha: &SemimoduleExpr,
    theta: CmpOp,
    bound: MonoidValue,
) -> PruneResult {
    if alpha.terms.is_empty() {
        // The empty sum is the monoid's neutral element; the comparison is ground.
        return if theta.eval(&alpha.op.identity(), &bound) {
            PruneResult::AlwaysTrue
        } else {
            PruneResult::AlwaysFalse
        };
    }
    match alpha.op {
        AggOp::Min => prune_min(alpha, theta, bound),
        AggOp::Max => prune_max(alpha, theta, bound),
        AggOp::Sum | AggOp::Count => prune_sum(alpha, theta, bound),
        AggOp::Prod => PruneResult::Simplified(alpha.clone()),
    }
}

fn keep_terms(alpha: &SemimoduleExpr, keep: impl Fn(&MonoidValue) -> bool) -> SemimoduleExpr {
    SemimoduleExpr {
        op: alpha.op,
        terms: alpha
            .terms
            .iter()
            .filter(|t| keep(&t.value))
            .cloned()
            .collect(),
    }
}

/// The values of terms whose coefficient is a non-zero constant (`1_S` after
/// simplification): these terms contribute their value in *every* possible world and
/// can therefore decide a comparison outright.
fn guaranteed_values(alpha: &SemimoduleExpr) -> Vec<MonoidValue> {
    alpha
        .terms
        .iter()
        .filter(|t| t.coeff.as_const().map(|c| !c.is_zero()).unwrap_or(false))
        .map(|t| t.value)
        .collect()
}

fn prune_min(alpha: &SemimoduleExpr, theta: CmpOp, bound: MonoidValue) -> PruneResult {
    let guaranteed = guaranteed_values(alpha);
    match theta {
        // min ≤ m: only terms with value ≤ m can witness the comparison; the others
        // never lower the minimum below themselves. Equivalent per the paper's rule.
        // A guaranteed term that already satisfies the bound decides the comparison.
        CmpOp::Le | CmpOp::Lt => {
            if guaranteed.iter().any(|v| theta.eval(v, &bound)) {
                return PruneResult::AlwaysTrue;
            }
            let kept = keep_terms(alpha, |v| theta.eval(v, &bound));
            if kept.terms.is_empty() {
                // Every remaining term exceeds the bound, so the minimum does too
                // (or the group is empty and the minimum is +∞).
                return PruneResult::AlwaysFalse;
            }
            PruneResult::Simplified(kept)
        }
        // min ≥ m (resp. >): holds iff no term whose value violates the bound is
        // present; terms that satisfy it can never decide the comparison and are
        // dropped. A guaranteed violator decides the comparison outright.
        CmpOp::Ge | CmpOp::Gt => {
            let violates = |v: &MonoidValue| !theta.eval(v, &bound);
            if guaranteed.iter().any(violates) {
                return PruneResult::AlwaysFalse;
            }
            let kept = keep_terms(alpha, violates);
            if kept.terms.is_empty() {
                // No violating term exists: the minimum is over satisfying values
                // only (or +∞ for the empty group), so the comparison always holds.
                return PruneResult::AlwaysTrue;
            }
            PruneResult::Simplified(kept)
        }
        // min = m: a guaranteed term strictly below m forces the minimum below m.
        // Terms above m are irrelevant.
        CmpOp::Eq => {
            if guaranteed.iter().any(|v| *v < bound) {
                return PruneResult::AlwaysFalse;
            }
            PruneResult::Simplified(keep_terms(alpha, |v| *v <= bound))
        }
        CmpOp::Ne => PruneResult::Simplified(alpha.clone()),
    }
}

fn prune_max(alpha: &SemimoduleExpr, theta: CmpOp, bound: MonoidValue) -> PruneResult {
    let guaranteed = guaranteed_values(alpha);
    match theta {
        CmpOp::Ge | CmpOp::Gt => {
            if guaranteed.iter().any(|v| theta.eval(v, &bound)) {
                return PruneResult::AlwaysTrue;
            }
            let kept = keep_terms(alpha, |v| theta.eval(v, &bound));
            if kept.terms.is_empty() {
                return PruneResult::AlwaysFalse;
            }
            PruneResult::Simplified(kept)
        }
        // max ≤ m (resp. <): dual of min ≥ — only violating terms (above the
        // bound) matter.
        CmpOp::Le | CmpOp::Lt => {
            let violates = |v: &MonoidValue| !theta.eval(v, &bound);
            if guaranteed.iter().any(violates) {
                return PruneResult::AlwaysFalse;
            }
            let kept = keep_terms(alpha, violates);
            if kept.terms.is_empty() {
                return PruneResult::AlwaysTrue;
            }
            PruneResult::Simplified(kept)
        }
        CmpOp::Eq => {
            if guaranteed.iter().any(|v| *v > bound) {
                return PruneResult::AlwaysFalse;
            }
            PruneResult::Simplified(keep_terms(alpha, |v| *v >= bound))
        }
        CmpOp::Ne => PruneResult::Simplified(alpha.clone()),
    }
}

fn prune_sum(alpha: &SemimoduleExpr, theta: CmpOp, bound: MonoidValue) -> PruneResult {
    // Only applicable when every term value is a non-negative finite number, so that
    // the sum over any subset of terms lies between 0 and the total.
    let mut total: i64 = 0;
    for t in &alpha.terms {
        match t.value {
            MonoidValue::Fin(v) if v >= 0 => total += v,
            _ => return PruneResult::Simplified(alpha.clone()),
        }
    }
    let bound_v = match bound {
        MonoidValue::Fin(v) => v,
        MonoidValue::PosInf => {
            return match theta {
                CmpOp::Le | CmpOp::Lt | CmpOp::Ne => PruneResult::AlwaysTrue,
                CmpOp::Ge | CmpOp::Gt | CmpOp::Eq => PruneResult::AlwaysFalse,
            }
        }
        MonoidValue::NegInf => {
            return match theta {
                CmpOp::Ge | CmpOp::Gt | CmpOp::Ne => PruneResult::AlwaysTrue,
                CmpOp::Le | CmpOp::Lt | CmpOp::Eq => PruneResult::AlwaysFalse,
            }
        }
    };
    // Baseline: the sum of the values of guaranteed terms (non-zero constant
    // coefficients); it is a lower bound on the sum in every possible world.
    let baseline: i64 = guaranteed_values(alpha)
        .iter()
        .filter_map(|v| v.finite())
        .sum();
    match theta {
        CmpOp::Le if total <= bound_v => PruneResult::AlwaysTrue,
        CmpOp::Lt if total < bound_v => PruneResult::AlwaysTrue,
        CmpOp::Ge if total < bound_v => PruneResult::AlwaysFalse,
        CmpOp::Gt if total <= bound_v => PruneResult::AlwaysFalse,
        CmpOp::Eq if total < bound_v => PruneResult::AlwaysFalse,
        CmpOp::Ge if baseline >= bound_v => PruneResult::AlwaysTrue,
        CmpOp::Gt if baseline > bound_v => PruneResult::AlwaysTrue,
        CmpOp::Le if baseline > bound_v => PruneResult::AlwaysFalse,
        CmpOp::Lt if baseline >= bound_v => PruneResult::AlwaysFalse,
        CmpOp::Eq if baseline > bound_v => PruneResult::AlwaysFalse,
        CmpOp::Ge if bound_v <= 0 => PruneResult::AlwaysTrue,
        CmpOp::Gt if bound_v < 0 => PruneResult::AlwaysTrue,
        CmpOp::Lt if bound_v <= 0 => PruneResult::AlwaysFalse,
        CmpOp::Le if bound_v < 0 => PruneResult::AlwaysFalse,
        _ => PruneResult::Simplified(alpha.clone()),
    }
}

/// Prune a general conditional semiring expression `[α θ β]`, returning an equivalent
/// (possibly simplified) semiring expression. Conditionals whose right-hand side is
/// not a constant are left untouched; constants on the left are handled by flipping
/// the comparison.
pub fn prune_conditional(expr: &SemiringExpr, kind: SemiringKind) -> SemiringExpr {
    let SemiringExpr::CmpMM(theta, lhs, rhs) = expr else {
        return expr.clone();
    };
    // Normalise so the constant (if any) is on the right.
    let (alpha, theta, bound) = if let Some(b) = rhs.as_const() {
        ((**lhs).clone(), *theta, b)
    } else if let Some(b) = lhs.as_const() {
        ((**rhs).clone(), theta.flip(), b)
    } else {
        return expr.clone();
    };
    match prune_against_constant(&alpha, theta, bound) {
        PruneResult::AlwaysTrue => SemiringExpr::Const(kind.one()),
        PruneResult::AlwaysFalse => SemiringExpr::Const(kind.zero()),
        PruneResult::Simplified(simplified) => SemiringExpr::cmp_mm(
            theta,
            simplified,
            SemimoduleExpr::constant_in(alpha.op, bound, kind),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::Fin;
    use pvc_expr::oracle::confidence_by_enumeration;
    use pvc_expr::VarTable;

    /// Build the paper's running example `[x⊗10 +min y⊗20 ≤ 15]`.
    fn min_example() -> (VarTable, SemimoduleExpr) {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.35);
        let y = vt.boolean("y", 0.8);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (SemiringExpr::Var(x), Fin(10)),
                (SemiringExpr::Var(y), Fin(20)),
            ],
        );
        (vt, alpha)
    }

    #[test]
    fn min_le_drops_large_terms() {
        let (_, alpha) = min_example();
        match prune_against_constant(&alpha, CmpOp::Le, Fin(15)) {
            PruneResult::Simplified(s) => {
                assert_eq!(s.num_terms(), 1);
                assert_eq!(s.terms[0].value, Fin(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pruning_preserves_probability() {
        // The paper's claim: P[Φ = 1_S] is unchanged by pruning (it equals 1 − P_x[0]).
        let (vt, alpha) = min_example();
        for theta in [
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Eq,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Ne,
        ] {
            for bound in [0, 10, 15, 20, 25] {
                let original = SemiringExpr::cmp_mm(
                    theta,
                    alpha.clone(),
                    SemimoduleExpr::constant(AggOp::Min, Fin(bound)),
                );
                let pruned = prune_conditional(&original, SemiringKind::Bool);
                let p0 = confidence_by_enumeration(&original, &vt, SemiringKind::Bool);
                let p1 = confidence_by_enumeration(&pruned, &vt, SemiringKind::Bool);
                assert!(
                    (p0 - p1).abs() < 1e-9,
                    "pruning changed probability for θ={theta:?}, bound={bound}: {p0} vs {p1}"
                );
            }
        }
    }

    #[test]
    fn max_pruning_preserves_probability() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.3);
        let b = vt.boolean("b", 0.6);
        let c = vt.boolean("c", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (SemiringExpr::Var(a), Fin(5)),
                (SemiringExpr::Var(b), Fin(50)),
                (SemiringExpr::Var(c), Fin(100)),
            ],
        );
        for theta in [
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Eq,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Ne,
        ] {
            for bound in [0, 5, 49, 50, 100, 150] {
                let original = SemiringExpr::cmp_mm(
                    theta,
                    alpha.clone(),
                    SemimoduleExpr::constant(AggOp::Max, Fin(bound)),
                );
                let pruned = prune_conditional(&original, SemiringKind::Bool);
                let p0 = confidence_by_enumeration(&original, &vt, SemiringKind::Bool);
                let p1 = confidence_by_enumeration(&pruned, &vt, SemiringKind::Bool);
                assert!((p0 - p1).abs() < 1e-9, "θ={theta:?}, bound={bound}");
            }
        }
    }

    #[test]
    fn sum_short_circuits() {
        // Σ of all values is 30; comparing against 50 with ≤ is always true.
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(a), Fin(10)),
                (SemiringExpr::Var(b), Fin(20)),
            ],
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Le, Fin(50)),
            PruneResult::AlwaysTrue
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Ge, Fin(31)),
            PruneResult::AlwaysFalse
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Gt, Fin(-1)),
            PruneResult::AlwaysTrue
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Lt, Fin(0)),
            PruneResult::AlwaysFalse
        );
        // In-range bounds are left alone.
        assert!(matches!(
            prune_against_constant(&alpha, CmpOp::Le, Fin(15)),
            PruneResult::Simplified(_)
        ));
    }

    #[test]
    fn sum_pruning_preserves_probability() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.4);
        let b = vt.boolean("b", 0.7);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(a), Fin(10)),
                (SemiringExpr::Var(b), Fin(20)),
            ],
        );
        for theta in [
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Eq,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Ne,
        ] {
            for bound in [-5, 0, 10, 15, 30, 40] {
                let original = SemiringExpr::cmp_mm(
                    theta,
                    alpha.clone(),
                    SemimoduleExpr::constant(AggOp::Sum, Fin(bound)),
                );
                let pruned = prune_conditional(&original, SemiringKind::Bool);
                let p0 = confidence_by_enumeration(&original, &vt, SemiringKind::Bool);
                let p1 = confidence_by_enumeration(&pruned, &vt, SemiringKind::Bool);
                assert!((p0 - p1).abs() < 1e-9, "θ={theta:?}, bound={bound}");
            }
        }
    }

    #[test]
    fn infinite_bounds() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let alpha = SemimoduleExpr::tensor(AggOp::Count, SemiringExpr::Var(a), Fin(1));
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Le, MonoidValue::PosInf),
            PruneResult::AlwaysTrue
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Ge, MonoidValue::PosInf),
            PruneResult::AlwaysFalse
        );
        assert_eq!(
            prune_against_constant(&alpha, CmpOp::Ge, MonoidValue::NegInf),
            PruneResult::AlwaysTrue
        );
    }

    #[test]
    fn constant_on_left_is_flipped() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let alpha = SemimoduleExpr::tensor(AggOp::Min, SemiringExpr::Var(a), Fin(10));
        // [5 ≤ α] should be treated as [α ≥ 5].
        let e = SemiringExpr::cmp_mm(
            CmpOp::Le,
            SemimoduleExpr::constant(AggOp::Min, Fin(5)),
            alpha,
        );
        let pruned = prune_conditional(&e, SemiringKind::Bool);
        let p0 = confidence_by_enumeration(&e, &vt, SemiringKind::Bool);
        let p1 = confidence_by_enumeration(&pruned, &vt, SemiringKind::Bool);
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn non_conditional_expressions_pass_through() {
        let e = SemiringExpr::Const(pvc_algebra::SemiringValue::Bool(true));
        assert_eq!(prune_conditional(&e, SemiringKind::Bool), e);
    }
}
