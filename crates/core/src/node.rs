//! Decomposition trees (d-trees): the knowledge-compilation target of the paper
//! (§5, Definition 7).
//!
//! A d-tree is a tree whose inner nodes are `⊕` (independent sum), `⊙` (independent
//! product), `⊗` (independent scalar action), `[θ]` (comparison of independent
//! expressions) and `⊔_x` (exhaustive, mutually exclusive case split on the value of a
//! variable), and whose leaves are variables or constants. The probability
//! distribution of a d-tree is computed bottom-up in one pass, using convolution at
//! the first four node kinds (Eqs. 4–9) and weighted mixing at `⊔` nodes (Eq. 10) —
//! in time `O(Π_i |p_i|)` over the node distributions (Theorem 2).

use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind, SemiringValue};
use pvc_expr::{Var, VarTable};
use pvc_prob::{MixedDist, MonoidDist, SemiringDist};
use std::fmt;

/// A decomposition tree over semiring and semimodule expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum DTree {
    /// Leaf: a random variable `x ∈ X`, carrying its own distribution.
    VarLeaf(Var),
    /// Leaf: a semiring constant `s ∈ S` (distribution `{(s, 1)}`).
    SConst(SemiringValue),
    /// Leaf: a monoid constant `m ∈ M` (distribution `{(m, 1)}`).
    MConst(MonoidValue),
    /// `⊕` over two independent *semiring* expressions (Eq. 4).
    SumS(Box<DTree>, Box<DTree>),
    /// `⊕` over two independent *semimodule* expressions in the given monoid (Eq. 6).
    SumM(AggOp, Box<DTree>, Box<DTree>),
    /// `⊙` — product of two independent semiring expressions (Eq. 5).
    Prod(Box<DTree>, Box<DTree>),
    /// `⊗` — scalar action of an independent semiring expression on a semimodule
    /// expression in the given monoid (Eq. 7).
    Tensor(AggOp, Box<DTree>, Box<DTree>),
    /// `[θ]` — comparison of two independent expressions, both semiring or both
    /// semimodule (Eqs. 8–9). The result is a semiring value.
    Cmp(CmpOp, Box<DTree>, Box<DTree>),
    /// `⊔_x` — mutually exclusive split on the value of variable `x`: one child per
    /// support value `s` with `P_x[s] ≠ 0` (Eq. 10).
    Exclusive(Var, Vec<(SemiringValue, DTree)>),
}

/// Errors raised while evaluating a d-tree's distribution.
///
/// These indicate a malformed tree (e.g. a `⊙` node over a semimodule child); trees
/// produced by the compiler in this crate never trigger them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DTreeError {
    /// A child produced monoid values where semiring values were required.
    ExpectedSemiring(&'static str),
    /// A child produced semiring values where monoid values were required.
    ExpectedMonoid(&'static str),
    /// A comparison node mixed semiring and monoid children.
    MixedComparison,
}

impl fmt::Display for DTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTreeError::ExpectedSemiring(ctx) => {
                write!(f, "expected a semiring-valued child at {ctx}")
            }
            DTreeError::ExpectedMonoid(ctx) => {
                write!(f, "expected a monoid-valued child at {ctx}")
            }
            DTreeError::MixedComparison => {
                write!(f, "comparison node mixes semiring and monoid children")
            }
        }
    }
}

impl std::error::Error for DTreeError {}

impl DTree {
    /// Compute the probability distribution represented by this d-tree, bottom-up in
    /// a single pass (Theorem 2 of the paper).
    ///
    /// `kind` fixes the ambient annotation semiring used for the `0_S`/`1_S` outcomes
    /// of comparison nodes.
    ///
    /// Implementation: the tree is flattened into a [`crate::arena::DTreeArena`]
    /// and evaluated by its iterative post-order loop (no recursion, native-sort
    /// value stack, threshold-folded comparisons). Callers that evaluate the same
    /// tree repeatedly should build the arena once with
    /// [`DTreeArena::from_tree`](crate::arena::DTreeArena::from_tree) and reuse it.
    ///
    /// # Empty comparison sides
    ///
    /// A [`DTree::Cmp`] node with a side whose distribution is *empty* (total mass
    /// 0) yields the **empty distribution** rather than an error: convolution
    /// against an empty operand has no outcomes. Sort mismatches are only reported
    /// (as [`DTreeError::MixedComparison`]) when both sides are non-empty.
    pub fn distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<MixedDist, DTreeError> {
        crate::arena::DTreeArena::from_tree(self).mixed_distribution(table, kind)
    }

    /// The distribution as a semiring distribution (for d-trees of semiring
    /// expressions).
    pub fn semiring_distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<SemiringDist, DTreeError> {
        crate::arena::DTreeArena::from_tree(self).semiring_distribution(table, kind)
    }

    /// The distribution as a monoid distribution (for d-trees of semimodule
    /// expressions).
    pub fn monoid_distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<MonoidDist, DTreeError> {
        crate::arena::DTreeArena::from_tree(self).monoid_distribution(table, kind)
    }

    /// Total number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        match self {
            DTree::VarLeaf(_) | DTree::SConst(_) | DTree::MConst(_) => 1,
            DTree::SumS(a, b)
            | DTree::SumM(_, a, b)
            | DTree::Prod(a, b)
            | DTree::Tensor(_, a, b)
            | DTree::Cmp(_, a, b) => 1 + a.num_nodes() + b.num_nodes(),
            DTree::Exclusive(_, branches) => {
                1 + branches.iter().map(|(_, c)| c.num_nodes()).sum::<usize>()
            }
        }
    }

    /// Number of `⊔` (mutually exclusive case split) nodes — the measure of how often
    /// the compiler had to fall back to Shannon expansion.
    pub fn num_exclusive_nodes(&self) -> usize {
        match self {
            DTree::VarLeaf(_) | DTree::SConst(_) | DTree::MConst(_) => 0,
            DTree::SumS(a, b)
            | DTree::SumM(_, a, b)
            | DTree::Prod(a, b)
            | DTree::Tensor(_, a, b)
            | DTree::Cmp(_, a, b) => a.num_exclusive_nodes() + b.num_exclusive_nodes(),
            DTree::Exclusive(_, branches) => {
                1 + branches
                    .iter()
                    .map(|(_, c)| c.num_exclusive_nodes())
                    .sum::<usize>()
            }
        }
    }

    /// Height of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            DTree::VarLeaf(_) | DTree::SConst(_) | DTree::MConst(_) => 1,
            DTree::SumS(a, b)
            | DTree::SumM(_, a, b)
            | DTree::Prod(a, b)
            | DTree::Tensor(_, a, b)
            | DTree::Cmp(_, a, b) => 1 + a.depth().max(b.depth()),
            DTree::Exclusive(_, branches) => {
                1 + branches.iter().map(|(_, c)| c.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            DTree::VarLeaf(_) | DTree::SConst(_) | DTree::MConst(_) => 1,
            DTree::SumS(a, b)
            | DTree::SumM(_, a, b)
            | DTree::Prod(a, b)
            | DTree::Tensor(_, a, b)
            | DTree::Cmp(_, a, b) => a.num_leaves() + b.num_leaves(),
            DTree::Exclusive(_, branches) => {
                branches.iter().map(|(_, c)| c.num_leaves()).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for DTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTree::VarLeaf(v) => write!(f, "{v}"),
            DTree::SConst(s) => write!(f, "{s}"),
            DTree::MConst(m) => write!(f, "{m}"),
            DTree::SumS(a, b) => write!(f, "({a} ⊕ {b})"),
            DTree::SumM(op, a, b) => write!(f, "({a} ⊕{op} {b})"),
            DTree::Prod(a, b) => write!(f, "({a} ⊙ {b})"),
            DTree::Tensor(op, a, b) => write!(f, "({a} ⊗{op} {b})"),
            DTree::Cmp(op, a, b) => write!(f, "[{a} {op} {b}]"),
            DTree::Exclusive(v, branches) => {
                write!(f, "⊔{v}(")?;
                for (i, (val, child)) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{v}←{val}: {child}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::Fin;

    fn table_abc(pa: f64, pb: f64, pc: f64) -> (VarTable, Var, Var, Var) {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", pa);
        let b = vt.boolean("b", pb);
        let c = vt.boolean("c", pc);
        (vt, a, b, c)
    }

    #[test]
    fn leaf_distributions() {
        let (vt, a, _, _) = table_abc(0.3, 0.5, 0.5);
        let kind = SemiringKind::Bool;
        let d = DTree::VarLeaf(a).semiring_distribution(&vt, kind).unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.3).abs() < 1e-12);
        let d = DTree::SConst(SemiringValue::Nat(4))
            .semiring_distribution(&vt, SemiringKind::Nat)
            .unwrap();
        assert_eq!(d.support_size(), 1);
        let d = DTree::MConst(Fin(9))
            .monoid_distribution(&vt, kind)
            .unwrap();
        assert!((d.prob(&Fin(9)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_node_is_conjunction() {
        let (vt, a, b, _) = table_abc(0.3, 0.5, 0.5);
        let tree = DTree::Prod(Box::new(DTree::VarLeaf(a)), Box::new(DTree::VarLeaf(b)));
        let d = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.15).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn sum_node_is_disjunction() {
        let (vt, a, b, _) = table_abc(0.3, 0.5, 0.5);
        let tree = DTree::SumS(Box::new(DTree::VarLeaf(a)), Box::new(DTree::VarLeaf(b)));
        let d = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - (1.0 - 0.7 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn tensor_and_monoid_sum() {
        // a⊗10 +min b⊗20.
        let (vt, a, b, _) = table_abc(0.5, 0.5, 0.5);
        let t1 = DTree::Tensor(
            AggOp::Min,
            Box::new(DTree::VarLeaf(a)),
            Box::new(DTree::MConst(Fin(10))),
        );
        let t2 = DTree::Tensor(
            AggOp::Min,
            Box::new(DTree::VarLeaf(b)),
            Box::new(DTree::MConst(Fin(20))),
        );
        let tree = DTree::SumM(AggOp::Min, Box::new(t1), Box::new(t2));
        let d = tree.monoid_distribution(&vt, SemiringKind::Bool).unwrap();
        assert!((d.prob(&Fin(10)) - 0.5).abs() < 1e-12);
        assert!((d.prob(&Fin(20)) - 0.25).abs() < 1e-12);
        assert!((d.prob(&MonoidValue::PosInf) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn comparison_node() {
        let (vt, a, _, _) = table_abc(0.4, 0.5, 0.5);
        // [a⊗10 ≤ 15] — true iff always (min of {10,+∞}... wait: a absent gives +∞).
        let alpha = DTree::Tensor(
            AggOp::Min,
            Box::new(DTree::VarLeaf(a)),
            Box::new(DTree::MConst(Fin(10))),
        );
        let tree = DTree::Cmp(CmpOp::Le, Box::new(alpha), Box::new(DTree::MConst(Fin(15))));
        let d = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn exclusive_node_mixes_branches() {
        let (vt, a, b, _) = table_abc(0.3, 0.6, 0.5);
        // ⊔a with children: a←⊥ gives b, a←⊤ gives ⊤ (i.e. the expression a + b).
        let tree = DTree::Exclusive(
            a,
            vec![
                (SemiringValue::Bool(false), DTree::VarLeaf(b)),
                (
                    SemiringValue::Bool(true),
                    DTree::SConst(SemiringValue::Bool(true)),
                ),
            ],
        );
        let d = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let expected = 0.3 + 0.7 * 0.6;
        assert!((d.prob(&SemiringValue::Bool(true)) - expected).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn malformed_trees_report_errors() {
        let (vt, a, _, _) = table_abc(0.3, 0.5, 0.5);
        // ⊙ over a monoid child.
        let bad = DTree::Prod(Box::new(DTree::MConst(Fin(1))), Box::new(DTree::VarLeaf(a)));
        assert!(bad.distribution(&vt, SemiringKind::Bool).is_err());
        // Mixed comparison.
        let bad = DTree::Cmp(
            CmpOp::Le,
            Box::new(DTree::MConst(Fin(1))),
            Box::new(DTree::VarLeaf(a)),
        );
        assert_eq!(
            bad.distribution(&vt, SemiringKind::Bool),
            Err(DTreeError::MixedComparison)
        );
    }

    #[test]
    fn size_statistics() {
        let (_, a, b, _) = table_abc(0.5, 0.5, 0.5);
        let tree = DTree::SumS(
            Box::new(DTree::Prod(
                Box::new(DTree::VarLeaf(a)),
                Box::new(DTree::VarLeaf(b)),
            )),
            Box::new(DTree::SConst(SemiringValue::Bool(false))),
        );
        assert_eq!(tree.num_nodes(), 5);
        assert_eq!(tree.num_leaves(), 3);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.num_exclusive_nodes(), 0);
    }

    #[test]
    fn display_renders() {
        let (_, a, b, _) = table_abc(0.5, 0.5, 0.5);
        let tree = DTree::SumS(Box::new(DTree::VarLeaf(a)), Box::new(DTree::VarLeaf(b)));
        assert_eq!(tree.to_string(), "(v0 ⊕ v1)");
    }
}
