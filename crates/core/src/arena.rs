//! Flattened d-trees: an index-based arena representation of [`DTree`] with an
//! iterative, allocation-light evaluator.
//!
//! [`DTree::distribution`] used to recurse through `Box` pointers, lift every
//! intermediate distribution into the mixed sum type and re-extract it at the
//! parent — three linear passes per node on top of the convolution itself. The
//! arena fixes all three costs:
//!
//! * **layout** — nodes live in one post-order `Vec` (children before parents,
//!   root last), so evaluation is a single forward loop with an explicit value
//!   stack: no recursion, no pointer chasing;
//! * **native sorts** — the value stack is typed ([`SemiringDist`] vs
//!   [`MonoidDist`]), so semiring-only and monoid-only regions evaluate in their
//!   native sort and values are lifted into the mixed type only where the tree
//!   itself mixes sorts (the root of a [`DTree::Exclusive`] over conflicting
//!   branches — which well-formed trees never produce);
//! * **scratch reuse** — all convolutions run through
//!   [`Dist::convolve_with_scratch`] against two shared pair buffers instead of
//!   allocating a candidate buffer per node, and SUM/COUNT `⊕` nodes take the
//!   adaptive dense path of [`pvc_prob::repr`];
//! * **one-sided CDF early exit** — a `[θ]` node comparing a monoid subtree
//!   against a constant with `θ ∈ {≤, <, ≥, >}` does not materialise the
//!   subtree's full distribution: the comparison is folded *into* the subtree
//!   walk, propagating a scalar `(P[· θ c], mass)` pair through MIN/MAX `⊕`, `⊗`
//!   and `⊔` nodes (`P[min(A,B) ≥ c] = P[A ≥ c]·P[B ≥ c]`, Eq. 10 mixes
//!   scalars, …) and falling back to a full evaluation plus a linear CDF scan
//!   only where no decomposition applies (SUM/COUNT sums).
//!
//! Build an arena once per compile with [`DTreeArena::from_tree`]; the engine's
//! [`CompilationCache`](crate::cache::CompilationCache) keeps arenas alongside the
//! memoised distributions so repeated evaluations skip both compilation and
//! flattening.
//!
//! # Empty sides of comparisons
//!
//! A comparison over a side whose distribution is **empty** (total mass 0 — e.g. a
//! variable leaf with an empty distribution, or an exhausted `⊔` node) yields the
//! **empty distribution**, not an error: convolution against an empty operand has
//! no outcomes (Eq. 1 sums over nothing). Sort checking therefore only applies to
//! non-empty sides; a `[θ]` node whose sides are non-empty and of different sorts
//! reports [`DTreeError::MixedComparison`], exactly as the recursive evaluator
//! did.

use crate::node::{DTree, DTreeError};
use crate::persist;
use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind, SemiringValue};
use pvc_expr::{Var, VarTable};
use pvc_prob::repr::{convolve_additive_chained, dense_mix_bounded, mix_dense_chained, ChainVal};
use pvc_prob::{
    record_dense_chain, DenseDist, Dist, DistValue, MixedDist, MonoidDist, SemiringDist, PROB_EPS,
};

/// One node of the flattened tree. Child fields are indices into the arena's
/// post-order node vector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArenaNode {
    /// Leaf: a random variable.
    VarLeaf(Var),
    /// Leaf: a semiring constant.
    SConst(SemiringValue),
    /// Leaf: a monoid constant.
    MConst(MonoidValue),
    /// `⊕` over semiring children.
    SumS { left: u32, right: u32 },
    /// `⊕` over semimodule children in the given monoid.
    SumM { op: AggOp, left: u32, right: u32 },
    /// `⊙` over semiring children.
    Prod { left: u32, right: u32 },
    /// `⊗` — scalar action of `scalar` on `value`.
    Tensor { op: AggOp, scalar: u32, value: u32 },
    /// `[θ]` — comparison of two independent children.
    Cmp { theta: CmpOp, left: u32, right: u32 },
    /// `⊔` — mutually exclusive split; branches live in the arena's branch table.
    Exclusive {
        var: Var,
        branches_start: u32,
        branches_len: u32,
    },
}

/// Statically inferable sort of a node's distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Sort {
    Semiring,
    Monoid,
    Unknown,
}

/// The threshold-fold plan attached to an eligible `[θ]` node: evaluate `child`
/// through the scalar CDF walk with the effective comparison `theta` (already
/// flipped if the constant was on the left) against `bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fold {
    theta: CmpOp,
    bound: MonoidValue,
    child: u32,
}

/// A decomposition tree flattened into a post-order arena (see the [module
/// documentation](self)).
///
/// Construction ([`from_tree`](Self::from_tree)) is a single traversal; the arena
/// is immutable afterwards and can be evaluated any number of times (and shared
/// across threads — it contains no interior mutability).
#[derive(Debug, Clone, PartialEq)]
pub struct DTreeArena {
    /// Post-order nodes; the root is the last entry.
    nodes: Vec<ArenaNode>,
    /// `(branch value, branch child root)` entries of all `⊔` nodes.
    branches: Vec<(SemiringValue, u32)>,
    /// Fold plan per node (`Some` only on eligible `[θ]` nodes).
    folds: Vec<Option<Fold>>,
    /// Statically inferred sort per node.
    sorts: Vec<Sort>,
}

/// One step of the explicit traversal stack: visit a node's children first
/// (`Expand`) or combine their already-computed values (`Emit`).
#[derive(Debug, Clone, Copy)]
enum Phase {
    Expand(u32),
    Emit(u32),
}

/// A value on the evaluation stack: a distribution in its native sort.
///
/// `Empty` is the sort-less empty distribution (a `⊔` node with no surviving
/// branches); `Mixed` only arises when a hand-built tree genuinely mixes sorts
/// under one `⊔` node, where the recursive evaluator also produced a mixed
/// distribution. `MD` is a monoid distribution still in the **dense** form of
/// the convolution kernel: SUM/COUNT `⊕` chains and dense-friendly `⊔` nodes
/// pass it from node to node without the dense → sparse → dense round-trip the
/// stack used to force at every exit (tracked by `kernel.dense_chain.*`). A
/// consumer that needs the sparse form demotes it — counting a chain *break*
/// when that happens mid-evaluation, but not at the root, where
/// materialisation is the point.
#[derive(Debug, Clone)]
enum Val {
    S(SemiringDist),
    M(MonoidDist),
    /// Monoid distribution in dense (offset-indexed) form.
    MD(DenseDist),
    Empty,
    Mixed(MixedDist),
}

impl Val {
    fn is_empty(&self) -> bool {
        match self {
            Val::S(d) => d.is_empty(),
            Val::M(d) => d.is_empty(),
            Val::MD(d) => d.is_empty(),
            Val::Empty => true,
            Val::Mixed(d) => d.is_empty(),
        }
    }

    /// Extract a semiring distribution, with the recursive evaluator's rules: an
    /// empty value of any sort extracts as the empty distribution; a non-empty
    /// monoid or mixed-with-monoid value is a sort error.
    fn into_semiring(self, ctx: &'static str) -> Result<SemiringDist, DTreeError> {
        match self {
            Val::S(d) => Ok(d),
            Val::Empty => Ok(Dist::empty()),
            Val::M(d) if d.is_empty() => Ok(Dist::empty()),
            Val::MD(d) if d.is_empty() => Ok(Dist::empty()),
            Val::M(_) | Val::MD(_) => Err(DTreeError::ExpectedSemiring(ctx)),
            Val::Mixed(d) => {
                let mut out = Vec::with_capacity(d.support_size());
                for (v, p) in d.iter() {
                    match v {
                        DistValue::S(s) => out.push((*s, p)),
                        DistValue::M(_) => return Err(DTreeError::ExpectedSemiring(ctx)),
                    }
                }
                Ok(Dist::from_pairs(out))
            }
        }
    }

    /// Extract a monoid distribution (dual of [`into_semiring`](Self::into_semiring)).
    fn into_monoid(self, ctx: &'static str) -> Result<MonoidDist, DTreeError> {
        match self {
            Val::M(d) => Ok(d),
            // Plain materialisation — callers that demote mid-chain record the
            // break themselves (see `demote_monoid`); the root does not.
            Val::MD(d) => Ok(d.to_dist()),
            Val::Empty => Ok(Dist::empty()),
            Val::S(d) if d.is_empty() => Ok(Dist::empty()),
            Val::S(_) => Err(DTreeError::ExpectedMonoid(ctx)),
            Val::Mixed(d) => {
                let mut out = Vec::with_capacity(d.support_size());
                for (v, p) in d.iter() {
                    match v {
                        DistValue::M(m) => out.push((*m, p)),
                        DistValue::S(_) => return Err(DTreeError::ExpectedMonoid(ctx)),
                    }
                }
                Ok(Dist::from_pairs(out))
            }
        }
    }

    /// Lift into the mixed sum type (the recursive evaluator's working type).
    fn into_mixed(self) -> MixedDist {
        match self {
            Val::S(d) => d.map(|v| DistValue::S(*v)),
            Val::M(d) => d.map(|v| DistValue::M(*v)),
            Val::MD(d) => d.to_dist().map(|v| DistValue::M(*v)),
            Val::Empty => Dist::empty(),
            Val::Mixed(d) => d,
        }
    }

    /// Demote to the sparse monoid form at a mid-chain consumer that cannot use
    /// the dense form, counting the chain break; sparse values pass through.
    fn demote_monoid(self, ctx: &'static str) -> Result<MonoidDist, DTreeError> {
        if let Val::MD(d) = &self {
            if !d.is_empty() {
                record_dense_chain(false);
            }
        }
        self.into_monoid(ctx)
    }
}

/// Reusable buffers for one evaluation pass: the traversal stack, the typed value
/// stack, and one convolution scratch buffer per sort. Nested evaluations (from
/// threshold folds) share the buffers through base-offset discipline.
#[derive(Default)]
struct EvalScratch {
    work: Vec<Phase>,
    stack: Vec<Val>,
    s_pairs: Vec<(SemiringValue, f64)>,
    m_pairs: Vec<(MonoidValue, f64)>,
    /// When set, `eval_from` tracks the value-stack high-water mark in
    /// `max_depth` (observed only when the metrics registry is enabled, so the
    /// disabled hot path pays one local branch per step).
    track_depth: bool,
    max_depth: usize,
}

impl DTreeArena {
    /// Flatten a [`DTree`] into post-order. One traversal; `O(nodes)`.
    pub fn from_tree(tree: &DTree) -> DTreeArena {
        let n = tree.num_nodes();
        let mut arena = DTreeArena {
            nodes: Vec::with_capacity(n),
            branches: Vec::new(),
            folds: Vec::with_capacity(n),
            sorts: Vec::with_capacity(n),
        };
        let mut branch_scratch = Vec::new();
        arena.push_tree(tree, &mut branch_scratch);
        debug_assert!(branch_scratch.is_empty());
        crate::obs::core_metrics()
            .arena_nodes
            .record(arena.nodes.len() as u64);
        arena
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena holds no nodes (never produced by
    /// [`from_tree`](Self::from_tree), which always pushes at least the root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate heap footprint in bytes (used for cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len()
            * (std::mem::size_of::<ArenaNode>()
                + std::mem::size_of::<Sort>()
                + std::mem::size_of::<Option<Fold>>())
            + self.branches.len() * std::mem::size_of::<(SemiringValue, u32)>()
    }

    /// The largest variable id referenced by any node (`None` for a
    /// variable-free arena) — used by the snapshot loader to refuse arenas
    /// whose variables are out of range for the target variable table.
    pub(crate) fn max_var(&self) -> Option<u32> {
        self.nodes
            .iter()
            .filter_map(|node| match node {
                ArenaNode::VarLeaf(v) | ArenaNode::Exclusive { var: v, .. } => Some(v.0),
                _ => None,
            })
            .max()
    }

    /// Serialise the arena into a snapshot writer (see [`crate::persist`]). The
    /// encoding is exact — nodes, branch table, fold plans and inferred sorts —
    /// so a decoded arena evaluates bit-identically to the original.
    pub(crate) fn encode_into(&self, w: &mut persist::Writer) {
        use persist::{put_agg_op, put_cmp_op, put_monoid_value, put_semiring_value};
        w.put_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            match node {
                ArenaNode::VarLeaf(v) => {
                    w.put_u8(0);
                    w.put_u32(v.0);
                }
                ArenaNode::SConst(c) => {
                    w.put_u8(1);
                    put_semiring_value(w, c);
                }
                ArenaNode::MConst(m) => {
                    w.put_u8(2);
                    put_monoid_value(w, m);
                }
                ArenaNode::SumS { left, right } => {
                    w.put_u8(3);
                    w.put_u32(*left);
                    w.put_u32(*right);
                }
                ArenaNode::SumM { op, left, right } => {
                    w.put_u8(4);
                    put_agg_op(w, *op);
                    w.put_u32(*left);
                    w.put_u32(*right);
                }
                ArenaNode::Prod { left, right } => {
                    w.put_u8(5);
                    w.put_u32(*left);
                    w.put_u32(*right);
                }
                ArenaNode::Tensor { op, scalar, value } => {
                    w.put_u8(6);
                    put_agg_op(w, *op);
                    w.put_u32(*scalar);
                    w.put_u32(*value);
                }
                ArenaNode::Cmp { theta, left, right } => {
                    w.put_u8(7);
                    put_cmp_op(w, *theta);
                    w.put_u32(*left);
                    w.put_u32(*right);
                }
                ArenaNode::Exclusive {
                    var,
                    branches_start,
                    branches_len,
                } => {
                    w.put_u8(8);
                    w.put_u32(var.0);
                    w.put_u32(*branches_start);
                    w.put_u32(*branches_len);
                }
            }
        }
        w.put_u64(self.branches.len() as u64);
        for (value, child) in &self.branches {
            put_semiring_value(w, value);
            w.put_u32(*child);
        }
        for fold in &self.folds {
            match fold {
                None => w.put_u8(0),
                Some(f) => {
                    w.put_u8(1);
                    put_cmp_op(w, f.theta);
                    put_monoid_value(w, &f.bound);
                    w.put_u32(f.child);
                }
            }
        }
        for sort in &self.sorts {
            w.put_u8(match sort {
                Sort::Semiring => 0,
                Sort::Monoid => 1,
                Sort::Unknown => 2,
            });
        }
    }

    /// Decode an arena previously written by [`encode_into`](Self::encode_into),
    /// validating every child index so a malformed payload surfaces as a typed
    /// error instead of an out-of-bounds panic at evaluation time.
    pub(crate) fn decode_from(
        r: &mut persist::Reader<'_>,
    ) -> Result<DTreeArena, persist::PersistError> {
        use persist::{
            take_agg_op, take_cmp_op, take_monoid_value, take_semiring_value, PersistError,
        };
        let n_nodes = r.take_count(2)?;
        let child_of = |idx: u32, i: usize| -> Result<u32, PersistError> {
            if (idx as usize) < i {
                Ok(idx)
            } else {
                Err(PersistError::Format(format!(
                    "arena node {i} references child {idx} (children must precede parents)"
                )))
            }
        };
        let mut nodes = Vec::with_capacity(n_nodes);
        // The branch table length is read after the nodes, so Exclusive branch
        // ranges are validated in a second pass below.
        for i in 0..n_nodes {
            let node = match r.take_u8()? {
                0 => ArenaNode::VarLeaf(Var(r.take_u32()?)),
                1 => ArenaNode::SConst(take_semiring_value(r)?),
                2 => ArenaNode::MConst(take_monoid_value(r)?),
                3 => ArenaNode::SumS {
                    left: child_of(r.take_u32()?, i)?,
                    right: child_of(r.take_u32()?, i)?,
                },
                4 => {
                    let op = take_agg_op(r)?;
                    ArenaNode::SumM {
                        op,
                        left: child_of(r.take_u32()?, i)?,
                        right: child_of(r.take_u32()?, i)?,
                    }
                }
                5 => ArenaNode::Prod {
                    left: child_of(r.take_u32()?, i)?,
                    right: child_of(r.take_u32()?, i)?,
                },
                6 => {
                    let op = take_agg_op(r)?;
                    ArenaNode::Tensor {
                        op,
                        scalar: child_of(r.take_u32()?, i)?,
                        value: child_of(r.take_u32()?, i)?,
                    }
                }
                7 => {
                    let theta = take_cmp_op(r)?;
                    ArenaNode::Cmp {
                        theta,
                        left: child_of(r.take_u32()?, i)?,
                        right: child_of(r.take_u32()?, i)?,
                    }
                }
                8 => ArenaNode::Exclusive {
                    var: Var(r.take_u32()?),
                    branches_start: r.take_u32()?,
                    branches_len: r.take_u32()?,
                },
                t => return Err(PersistError::Format(format!("bad arena-node tag {t}"))),
            };
            nodes.push(node);
        }
        let n_branches = r.take_count(3)?;
        let mut branches = Vec::with_capacity(n_branches);
        for _ in 0..n_branches {
            let value = take_semiring_value(r)?;
            let child = r.take_u32()?;
            if child as usize >= n_nodes {
                return Err(PersistError::Format(format!(
                    "arena branch references unknown node {child}"
                )));
            }
            branches.push((value, child));
        }
        for (i, node) in nodes.iter().enumerate() {
            if let ArenaNode::Exclusive {
                branches_start,
                branches_len,
                ..
            } = node
            {
                let end = *branches_start as usize + *branches_len as usize;
                if end > n_branches {
                    return Err(PersistError::Format(format!(
                        "arena node {i} references branches beyond the branch table"
                    )));
                }
                for (_, child) in &branches[*branches_start as usize..end] {
                    child_of(*child, i)?;
                }
            }
        }
        let mut folds = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            folds.push(match r.take_u8()? {
                0 => None,
                1 => {
                    let theta = take_cmp_op(r)?;
                    let bound = take_monoid_value(r)?;
                    Some(Fold {
                        theta,
                        bound,
                        child: child_of(r.take_u32()?, i)?,
                    })
                }
                t => return Err(PersistError::Format(format!("bad fold tag {t}"))),
            });
        }
        let mut sorts = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            sorts.push(match r.take_u8()? {
                0 => Sort::Semiring,
                1 => Sort::Monoid,
                2 => Sort::Unknown,
                t => return Err(PersistError::Format(format!("bad sort tag {t}"))),
            });
        }
        Ok(DTreeArena {
            nodes,
            branches,
            folds,
            sorts,
        })
    }

    fn push_tree(&mut self, tree: &DTree, branch_scratch: &mut Vec<(SemiringValue, u32)>) -> u32 {
        match tree {
            DTree::VarLeaf(v) => self.push_node(ArenaNode::VarLeaf(*v), Sort::Semiring),
            DTree::SConst(s) => self.push_node(ArenaNode::SConst(*s), Sort::Semiring),
            DTree::MConst(m) => self.push_node(ArenaNode::MConst(*m), Sort::Monoid),
            DTree::SumS(a, b) => {
                let left = self.push_tree(a, branch_scratch);
                let right = self.push_tree(b, branch_scratch);
                self.push_node(ArenaNode::SumS { left, right }, Sort::Semiring)
            }
            DTree::Prod(a, b) => {
                let left = self.push_tree(a, branch_scratch);
                let right = self.push_tree(b, branch_scratch);
                self.push_node(ArenaNode::Prod { left, right }, Sort::Semiring)
            }
            DTree::SumM(op, a, b) => {
                let left = self.push_tree(a, branch_scratch);
                let right = self.push_tree(b, branch_scratch);
                self.push_node(
                    ArenaNode::SumM {
                        op: *op,
                        left,
                        right,
                    },
                    Sort::Monoid,
                )
            }
            DTree::Tensor(op, scalar, value) => {
                let scalar = self.push_tree(scalar, branch_scratch);
                let value = self.push_tree(value, branch_scratch);
                self.push_node(
                    ArenaNode::Tensor {
                        op: *op,
                        scalar,
                        value,
                    },
                    Sort::Monoid,
                )
            }
            DTree::Cmp(theta, a, b) => {
                let left = self.push_tree(a, branch_scratch);
                let right = self.push_tree(b, branch_scratch);
                let idx = self.push_node(
                    ArenaNode::Cmp {
                        theta: *theta,
                        left,
                        right,
                    },
                    Sort::Semiring,
                );
                self.plan_fold(idx, *theta, left, right);
                idx
            }
            DTree::Exclusive(var, branches) => {
                // Branch entries accumulate in a shared scratch (inner Exclusive
                // nodes drain their own region first), avoiding one temporary
                // vector per ⊔ node.
                let scratch_base = branch_scratch.len();
                let mut sort = None;
                for (value, child) in branches {
                    let child_idx = self.push_tree(child, branch_scratch);
                    let child_sort = self.sorts[child_idx as usize];
                    sort = Some(match sort {
                        None => child_sort,
                        Some(s) if s == child_sort => s,
                        Some(_) => Sort::Unknown,
                    });
                    branch_scratch.push((*value, child_idx));
                }
                let branches_start = self.branches.len() as u32;
                let branches_len = (branch_scratch.len() - scratch_base) as u32;
                self.branches.extend(branch_scratch.drain(scratch_base..));
                self.push_node(
                    ArenaNode::Exclusive {
                        var: *var,
                        branches_start,
                        branches_len,
                    },
                    sort.unwrap_or(Sort::Unknown),
                )
            }
        }
    }

    fn push_node(&mut self, node: ArenaNode, sort: Sort) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.folds.push(None);
        self.sorts.push(sort);
        idx
    }

    /// Attach a threshold-fold plan to a freshly pushed `[θ]` node when one side
    /// is a monoid constant, the comparison is one-sided, and the other side is
    /// statically monoid-sorted. The evaluator then never expands the node's
    /// children: the non-constant subtree is walked by the scalar CDF recursion
    /// instead.
    fn plan_fold(&mut self, idx: u32, theta: CmpOp, left: u32, right: u32) {
        if !matches!(theta, CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt) {
            return;
        }
        let (bound, child, eff_theta) =
            match (self.nodes[left as usize], self.nodes[right as usize]) {
                (_, ArenaNode::MConst(m)) => (m, left, theta),
                // Constant on the left: `m θ α` ⇔ `α θ.flip() m`.
                (ArenaNode::MConst(m), _) => (m, right, theta.flip()),
                _ => return,
            };
        if self.sorts[child as usize] != Sort::Monoid {
            return;
        }
        self.folds[idx as usize] = Some(Fold {
            theta: eff_theta,
            bound,
            child,
        });
    }

    /// Evaluate the whole arena and return the root distribution in the mixed sum
    /// type (drop-in for the recursive `DTree::distribution`).
    pub fn mixed_distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<MixedDist, DTreeError> {
        Ok(self.evaluate(table, kind)?.into_mixed())
    }

    /// Evaluate and extract the root as a semiring distribution.
    pub fn semiring_distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<SemiringDist, DTreeError> {
        self.evaluate(table, kind)?.into_semiring("root")
    }

    /// Evaluate and extract the root as a monoid distribution.
    pub fn monoid_distribution(
        &self,
        table: &VarTable,
        kind: SemiringKind,
    ) -> Result<MonoidDist, DTreeError> {
        self.evaluate(table, kind)?.into_monoid("root")
    }

    fn evaluate(&self, table: &VarTable, kind: SemiringKind) -> Result<Val, DTreeError> {
        let mut scratch = EvalScratch::default();
        let depth_hist = &crate::obs::core_metrics().eval_stack_depth;
        scratch.track_depth = depth_hist.is_enabled();
        let result = self.eval_from(self.nodes.len() as u32 - 1, table, kind, &mut scratch);
        if scratch.track_depth {
            depth_hist.record(scratch.max_depth as u64);
        }
        result
    }

    /// The iterative post-order evaluation of the subtree rooted at `root`: an
    /// explicit traversal stack (`Expand` visits children first, `Emit` combines
    /// their results) drives a typed value stack — no recursion through the tree.
    /// A `[θ]` node with a fold plan never expands its children; it computes
    /// through the scalar CDF walk of [`threshold`](Self::threshold) instead.
    fn eval_from(
        &self,
        root: u32,
        table: &VarTable,
        kind: SemiringKind,
        scratch: &mut EvalScratch,
    ) -> Result<Val, DTreeError> {
        let stack_base = scratch.stack.len();
        let work_base = scratch.work.len();
        scratch.work.push(Phase::Expand(root));
        while scratch.work.len() > work_base {
            if scratch.track_depth {
                scratch.max_depth = scratch.max_depth.max(scratch.stack.len());
            }
            let phase = scratch.work.pop().expect("work stack entry");
            let i = match phase {
                Phase::Expand(i) => {
                    match self.nodes[i as usize] {
                        // Leaves evaluate immediately.
                        ArenaNode::VarLeaf(v) => {
                            scratch.stack.push(Val::S(table.dist(v).clone()));
                            continue;
                        }
                        ArenaNode::SConst(s) => {
                            scratch.stack.push(Val::S(Dist::point(s)));
                            continue;
                        }
                        ArenaNode::MConst(m) => {
                            scratch.stack.push(Val::M(Dist::point(m)));
                            continue;
                        }
                        // A folded comparison handles its own subtree.
                        ArenaNode::Cmp { .. } if self.folds[i as usize].is_some() => {
                            let fold = self.folds[i as usize].expect("checked fold");
                            let (p_true, mass) = self.threshold(
                                fold.child, fold.theta, fold.bound, table, kind, scratch,
                            )?;
                            scratch
                                .stack
                                .push(Val::S(comparison_dist(kind, p_true, mass)));
                            continue;
                        }
                        ArenaNode::SumS { left, right }
                        | ArenaNode::Prod { left, right }
                        | ArenaNode::SumM { left, right, .. }
                        | ArenaNode::Cmp { left, right, .. } => {
                            scratch.work.push(Phase::Emit(i));
                            scratch.work.push(Phase::Expand(right));
                            scratch.work.push(Phase::Expand(left));
                            continue;
                        }
                        ArenaNode::Tensor { scalar, value, .. } => {
                            scratch.work.push(Phase::Emit(i));
                            scratch.work.push(Phase::Expand(value));
                            scratch.work.push(Phase::Expand(scalar));
                            continue;
                        }
                        ArenaNode::Exclusive {
                            branches_start,
                            branches_len,
                            ..
                        } => {
                            scratch.work.push(Phase::Emit(i));
                            // Children are pushed in reverse so they evaluate (and
                            // land on the value stack) in branch order.
                            for k in (0..branches_len as usize).rev() {
                                let (_, child) = self.branches[branches_start as usize + k];
                                scratch.work.push(Phase::Expand(child));
                            }
                            continue;
                        }
                    }
                }
                Phase::Emit(i) => i,
            };
            let value = match self.nodes[i as usize] {
                ArenaNode::SumS { .. } => {
                    let right = scratch.stack.pop().expect("⊕ right operand");
                    let left = scratch.stack.pop().expect("⊕ left operand");
                    let da = left.into_semiring("⊕(semiring)")?;
                    let db = right.into_semiring("⊕(semiring)")?;
                    Val::S(da.convolve_with_scratch(&db, |x, y| x.add(y), &mut scratch.s_pairs))
                }
                ArenaNode::Prod { .. } => {
                    let right = scratch.stack.pop().expect("⊙ right operand");
                    let left = scratch.stack.pop().expect("⊙ left operand");
                    let da = left.into_semiring("⊙")?;
                    let db = right.into_semiring("⊙")?;
                    Val::S(da.convolve_with_scratch(&db, |x, y| x.mul(y), &mut scratch.s_pairs))
                }
                ArenaNode::SumM { op, .. } => {
                    let right = scratch.stack.pop().expect("⊕ right operand");
                    let left = scratch.stack.pop().expect("⊕ left operand");
                    match op {
                        // SUM/COUNT: adaptive dense/sparse kernel, and a dense
                        // operand stays dense across the node boundary.
                        AggOp::Sum | AggOp::Count => {
                            let to_chain = |v: Val| -> Result<ChainVal, DTreeError> {
                                Ok(match v {
                                    Val::MD(d) => ChainVal::Dense(d),
                                    other => ChainVal::Sparse(other.into_monoid("⊕(semimodule)")?),
                                })
                            };
                            let ca = to_chain(left)?;
                            let cb = to_chain(right)?;
                            match convolve_additive_chained(ca, cb, &mut scratch.m_pairs) {
                                ChainVal::Dense(d) => Val::MD(d),
                                ChainVal::Sparse(d) => Val::M(d),
                            }
                        }
                        _ => {
                            let da = left.demote_monoid("⊕(semimodule)")?;
                            let db = right.demote_monoid("⊕(semimodule)")?;
                            Val::M(da.convolve_with_scratch(
                                &db,
                                |x, y| op.combine(x, y),
                                &mut scratch.m_pairs,
                            ))
                        }
                    }
                }
                ArenaNode::Tensor { op, .. } => {
                    let value = scratch.stack.pop().expect("⊗ value operand");
                    let scalar = scratch.stack.pop().expect("⊗ scalar operand");
                    let ds = scalar.into_semiring("⊗ scalar")?;
                    let dm = value.demote_monoid("⊗ value")?;
                    Val::M(ds.convolve_with_scratch(
                        &dm,
                        |s, m| op.scalar_action(s, m),
                        &mut scratch.m_pairs,
                    ))
                }
                ArenaNode::Cmp { theta, .. } => {
                    let right = scratch.stack.pop().expect("[θ] right operand");
                    let left = scratch.stack.pop().expect("[θ] left operand");
                    self.compare(theta, left, right, kind, scratch)?
                }
                ArenaNode::Exclusive {
                    var,
                    branches_start,
                    branches_len,
                } => {
                    let n = branches_len as usize;
                    let vals = scratch.stack.split_off(scratch.stack.len() - n);
                    let var_dist = table.dist(var);
                    let mut acc = Val::Empty;
                    for (k, val) in vals.into_iter().enumerate() {
                        let (value, _) = &self.branches[branches_start as usize + k];
                        let weight = var_dist.prob(value);
                        if weight <= 0.0 {
                            continue;
                        }
                        acc = mix_scaled(acc, val, weight);
                    }
                    acc
                }
                ArenaNode::VarLeaf(_) | ArenaNode::SConst(_) | ArenaNode::MConst(_) => {
                    unreachable!("leaves are evaluated during Expand")
                }
            };
            scratch.stack.push(value);
        }
        if scratch.track_depth {
            scratch.max_depth = scratch.max_depth.max(scratch.stack.len());
        }
        debug_assert_eq!(
            scratch.stack.len(),
            stack_base + 1,
            "post-order stack imbalance"
        );
        Ok(scratch.stack.pop().expect("root value"))
    }

    /// A `[θ]` node without a fold plan: both children fully evaluated. Sorts are
    /// detected from the values (mirroring the recursive evaluator's
    /// support-peeking), empty sides yield the empty distribution, and non-empty
    /// sides of different sorts are a [`DTreeError::MixedComparison`].
    fn compare(
        &self,
        theta: CmpOp,
        left: Val,
        right: Val,
        kind: SemiringKind,
        scratch: &mut EvalScratch,
    ) -> Result<Val, DTreeError> {
        if left.is_empty() || right.is_empty() {
            return Ok(Val::Empty);
        }
        // A comparison convolves value-by-value: dense operands demote here
        // (counted as chain breaks — the chain genuinely ends mid-evaluation).
        let demote = |v: Val| -> Result<Val, DTreeError> {
            Ok(match v {
                Val::MD(_) => Val::M(v.demote_monoid("[θ]")?),
                other => other,
            })
        };
        let left = demote(left)?;
        let right = demote(right)?;
        let is_semiring = |v: &Val| match v {
            Val::S(_) => true,
            Val::M(_) => false,
            Val::MD(_) => unreachable!("dense sides demoted above"),
            Val::Empty => unreachable!("empty sides handled above"),
            Val::Mixed(d) => matches!(d.support().next(), Some(DistValue::S(_))),
        };
        match (is_semiring(&left), is_semiring(&right)) {
            (true, true) => {
                let da = left.into_semiring("[θ]")?;
                let db = right.into_semiring("[θ]")?;
                Ok(Val::S(da.convolve_with_scratch(
                    &db,
                    |x, y| {
                        if theta.eval(x, y) {
                            kind.one()
                        } else {
                            kind.zero()
                        }
                    },
                    &mut scratch.s_pairs,
                )))
            }
            (false, false) => {
                let da = left.into_monoid("[θ]")?;
                let db = right.into_monoid("[θ]")?;
                Ok(Val::S(da.convolve_with_scratch(
                    &db,
                    |x, y| {
                        if theta.eval(x, y) {
                            kind.one()
                        } else {
                            kind.zero()
                        }
                    },
                    &mut scratch.s_pairs,
                )))
            }
            _ => Err(DTreeError::MixedComparison),
        }
    }

    /// The scalar CDF walk: `(P[subtree θ bound], total mass)` of the monoid
    /// subtree rooted at `idx`, without materialising its distribution where the
    /// comparison decomposes:
    ///
    /// * `min(A, B) θ c` for upward-closed `θ` (≥, >) is `A θ c ∧ B θ c` — the
    ///   probabilities multiply; downward `θ` (≤, <) goes through the complement.
    ///   `max` is dual.
    /// * `Φ ⊗ α` under MIN/MAX contributes `α`'s scalar when the scalar is
    ///   non-zero and the monoid identity otherwise — only the (cheap) scalar
    ///   side's distribution is needed.
    /// * `⊔` mixes the branch scalars with the branch weights.
    /// * Everything else (SUM/COUNT sums, leaves) evaluates its subtree fully and
    ///   accumulates the comparison as a linear scan.
    fn threshold(
        &self,
        idx: u32,
        theta: CmpOp,
        bound: MonoidValue,
        table: &VarTable,
        kind: SemiringKind,
        scratch: &mut EvalScratch,
    ) -> Result<(f64, f64), DTreeError> {
        match self.nodes[idx as usize] {
            ArenaNode::MConst(m) => Ok((if theta.eval(&m, &bound) { 1.0 } else { 0.0 }, 1.0)),
            ArenaNode::SumM { op, left, right } => match (op, theta) {
                // The comparison distributes over the lattice operation: both
                // sides must satisfy it independently.
                (AggOp::Min, CmpOp::Ge | CmpOp::Gt) | (AggOp::Max, CmpOp::Le | CmpOp::Lt) => {
                    let (pl, ml) = self.threshold(left, theta, bound, table, kind, scratch)?;
                    let (pr, mr) = self.threshold(right, theta, bound, table, kind, scratch)?;
                    Ok((pl * pr, ml * mr))
                }
                // Complement of the distributing direction.
                (AggOp::Min, CmpOp::Le | CmpOp::Lt) | (AggOp::Max, CmpOp::Ge | CmpOp::Gt) => {
                    let (p_neg, mass) =
                        self.threshold(idx, theta.negate(), bound, table, kind, scratch)?;
                    Ok((mass - p_neg, mass))
                }
                _ => self.threshold_by_scan(idx, theta, bound, table, kind, scratch),
            },
            ArenaNode::Tensor { op, scalar, value } if matches!(op, AggOp::Min | AggOp::Max) => {
                // s ⊗ m is m when s ≠ 0_S and the identity otherwise, so only the
                // scalar's zero-mass matters.
                let scalar_val = self.eval_from(scalar, table, kind, scratch)?;
                let ds = scalar_val.into_semiring("⊗ scalar")?;
                let mass_s = ds.total_mass();
                let p_zero: f64 = ds.iter().filter(|(s, _)| s.is_zero()).map(|(_, p)| p).sum();
                let (pv, mv) = self.threshold(value, theta, bound, table, kind, scratch)?;
                let id_true = theta.eval(&op.identity(), &bound);
                let p = p_zero * if id_true { mv } else { 0.0 } + (mass_s - p_zero) * pv;
                Ok((p, mass_s * mv))
            }
            ArenaNode::Tensor { op, scalar, value } if matches!(op, AggOp::Sum | AggOp::Count) => {
                match self.threshold_tensor_additive(
                    scalar, value, op, theta, bound, table, kind, scratch,
                )? {
                    Some(result) => Ok(result),
                    None => self.threshold_by_scan(idx, theta, bound, table, kind, scratch),
                }
            }
            ArenaNode::Exclusive {
                var,
                branches_start,
                branches_len,
            } => {
                let var_dist = table.dist(var);
                let mut p = 0.0;
                let mut mass = 0.0;
                for k in 0..branches_len as usize {
                    let (value, child) = self.branches[branches_start as usize + k];
                    let weight = var_dist.prob(&value);
                    if weight <= 0.0 {
                        continue;
                    }
                    let (pb, mb) = self.threshold(child, theta, bound, table, kind, scratch)?;
                    p += weight * pb;
                    mass += weight * mb;
                }
                Ok((p, mass))
            }
            _ => self.threshold_by_scan(idx, theta, bound, table, kind, scratch),
        }
    }

    /// One-sided CDF propagation through a SUM/COUNT `⊗` node: under the
    /// semimodule action `n ⊗ m = n·m` (with `n ≥ 1` and finite `m`), the
    /// comparison `n·m θ c` is equivalent to `m θ' c'` with an integer-rescaled
    /// bound (`≥` takes `⌈c/n⌉`, `>` and `≤` take `⌊c/n⌋`, `<` takes `⌈c/n⌉` —
    /// `±∞` values pass the action unchanged and satisfy the rescaled
    /// comparison identically), so the value subtree can keep the scalar walk
    /// with one recursion **per distinct multiplicity** instead of
    /// materialising its full distribution. Multiplicity `0` contributes the
    /// monoid identity, exactly as in the MIN/MAX arm.
    ///
    /// Returns `None` (caller scans) when the bound is not finite or the scalar
    /// carries more than [`MAX_TENSOR_FOLD_MULTIPLICITIES`] distinct non-zero
    /// multiplicities — the rescaled recursions would outweigh one evaluation.
    #[allow(clippy::too_many_arguments)]
    fn threshold_tensor_additive(
        &self,
        scalar: u32,
        value: u32,
        op: AggOp,
        theta: CmpOp,
        bound: MonoidValue,
        table: &VarTable,
        kind: SemiringKind,
        scratch: &mut EvalScratch,
    ) -> Result<Option<(f64, f64)>, DTreeError> {
        let Some(c) = bound.finite() else {
            return Ok(None);
        };
        let scalar_val = self.eval_from(scalar, table, kind, scratch)?;
        let ds = scalar_val.into_semiring("⊗ scalar")?;
        let mass_s = ds.total_mass();
        // Group the scalar's mass by multiplicity and rescale the bound once
        // per distinct non-zero multiplicity.
        let mut p_zero = 0.0;
        let mut groups: Vec<(u64, MonoidValue, f64)> = Vec::new();
        for (s, p) in ds.iter() {
            let n = s.as_multiplicity();
            if n == 0 {
                p_zero += p;
                continue;
            }
            if let Some(group) = groups.iter_mut().find(|(m, _, _)| *m == n) {
                group.2 += p;
                continue;
            }
            if groups.len() == MAX_TENSOR_FOLD_MULTIPLICITIES {
                return Ok(None);
            }
            let Some(rescaled) = rescale_bound(theta, c, n) else {
                return Ok(None);
            };
            groups.push((n, MonoidValue::Fin(rescaled), p));
        }
        let mut p = 0.0;
        let mut mv = None;
        for (_, rescaled, weight) in &groups {
            let (pg, mg) = self.threshold(value, theta, *rescaled, table, kind, scratch)?;
            p += weight * pg;
            mv = Some(mg);
        }
        let mv = match mv {
            Some(m) => m,
            // All multiplicities were zero: one walk just for the value mass.
            None => self.threshold(value, theta, bound, table, kind, scratch)?.1,
        };
        if theta.eval(&op.identity(), &bound) {
            p += p_zero * mv;
        }
        Ok(Some((p, mass_s * mv)))
    }

    /// Threshold fallback: evaluate the subtree fully, then accumulate the scalar
    /// CDF with one linear scan (still cheaper than convolving against the
    /// constant and materialising the two-point comparison distribution).
    fn threshold_by_scan(
        &self,
        idx: u32,
        theta: CmpOp,
        bound: MonoidValue,
        table: &VarTable,
        kind: SemiringKind,
        scratch: &mut EvalScratch,
    ) -> Result<(f64, f64), DTreeError> {
        let val = self.eval_from(idx, table, kind, scratch)?;
        let mut p = 0.0;
        let mut mass = 0.0;
        // A dense subtree result is scanned in place — ascending non-zero cells
        // are exactly the sparse iteration order, so the accumulation is
        // bit-identical and no chain break happens here.
        if let Val::MD(d) = &val {
            for (v, pm) in d.iter() {
                mass += pm;
                if theta.eval(&MonoidValue::Fin(v), &bound) {
                    p += pm;
                }
            }
            return Ok((p, mass));
        }
        let d = val.into_monoid("[θ]")?;
        for (m, pm) in d.iter() {
            mass += pm;
            if theta.eval(m, &bound) {
                p += pm;
            }
        }
        Ok((p, mass))
    }
}

/// Cap on distinct non-zero multiplicities a SUM/COUNT `⊗` threshold fold will
/// recurse for; scalars more varied than this fall back to the full scan.
const MAX_TENSOR_FOLD_MULTIPLICITIES: usize = 4;

/// The rescaled bound `c'` with `n·m θ c ⇔ m θ c'` for integers `m`, `n ≥ 1`:
/// `≥` and `<` round the quotient up, `>` and `≤` round it down (Euclidean
/// division over `i128` so `i64::MIN` bounds cannot overflow). `None` for
/// two-sided comparisons, which do not rescale.
fn rescale_bound(theta: CmpOp, c: i64, n: u64) -> Option<i64> {
    let c = i128::from(c);
    let n = i128::from(n);
    let scaled = match theta {
        CmpOp::Ge | CmpOp::Lt => -((-c).div_euclid(n)),
        CmpOp::Gt | CmpOp::Le => c.div_euclid(n),
        CmpOp::Eq | CmpOp::Ne => return None,
    };
    i64::try_from(scaled).ok()
}

/// The two-point comparison distribution `{(1_S, p_true), (0_S, mass − p_true)}`
/// with entries at or below [`PROB_EPS`] dropped (the same rule the convolution
/// kernel applies).
fn comparison_dist(kind: SemiringKind, p_true: f64, mass: f64) -> SemiringDist {
    let p_false = mass - p_true;
    let mut entries = Vec::with_capacity(2);
    if p_false > PROB_EPS {
        entries.push((kind.zero(), p_false));
    }
    if p_true > PROB_EPS {
        entries.push((kind.one(), p_true));
    }
    debug_assert!(kind.zero() < kind.one());
    Dist::from_sorted_unique(entries)
}

/// Mix `next`, scaled by `weight`, into the accumulator, staying in the native
/// sort while both sides agree and widening to the mixed sum type only when a
/// `⊔` node genuinely mixes sorts. Dense monoid values stay dense while the
/// union range remains bounded (chain extends); otherwise they demote (chain
/// breaks) and the sparse mix runs — both paths bit-identical in value.
fn mix_scaled(acc: Val, next: Val, weight: f64) -> Val {
    let scaled = match next {
        Val::S(d) => Val::S(d.scale(weight)),
        Val::M(d) => Val::M(d.scale(weight)),
        Val::MD(d) => Val::MD(d.scale(weight)),
        Val::Empty => Val::Empty,
        Val::Mixed(d) => Val::Mixed(d.scale(weight)),
    };
    match (acc, scaled) {
        (acc, next) if next.is_empty() => acc,
        (acc, next) if acc.is_empty() => next,
        (Val::S(a), Val::S(b)) => Val::S(a.mix(&b)),
        (Val::M(a), Val::M(b)) => Val::M(a.mix(&b)),
        (Val::MD(a), Val::MD(b)) => match mix_dense_chained(&a, &b) {
            Some(mixed) => Val::MD(mixed),
            None => {
                record_dense_chain(false);
                record_dense_chain(false);
                Val::M(a.to_dist().mix(&b.to_dist()))
            }
        },
        (Val::MD(a), Val::M(b)) => match promote_for_mix(&a, &b) {
            Some(db) => match mix_dense_chained(&a, &db) {
                Some(mixed) => Val::MD(mixed),
                None => {
                    record_dense_chain(false);
                    Val::M(a.to_dist().mix(&b))
                }
            },
            None => {
                record_dense_chain(false);
                Val::M(a.to_dist().mix(&b))
            }
        },
        (Val::M(a), Val::MD(b)) => match promote_for_mix(&b, &a) {
            Some(da) => match mix_dense_chained(&da, &b) {
                Some(mixed) => Val::MD(mixed),
                None => {
                    record_dense_chain(false);
                    Val::M(a.mix(&b.to_dist()))
                }
            },
            None => {
                record_dense_chain(false);
                Val::M(a.mix(&b.to_dist()))
            }
        },
        (a, b) => {
            for v in [&a, &b] {
                if let Val::MD(d) = v {
                    if !d.is_empty() {
                        record_dense_chain(false);
                    }
                }
            }
            Val::Mixed(a.into_mixed().mix(&b.into_mixed()))
        }
    }
}

/// Lift a sparse `⊔` operand into the dense form so it can mix with a dense
/// accumulator, guarded by the same union bound [`DenseDist::mix`] applies —
/// checked *before* the dense materialisation so a scattered operand never
/// allocates a huge cell vector.
fn promote_for_mix(dense: &DenseDist, sparse: &MonoidDist) -> Option<DenseDist> {
    let lo = sparse.min_value()?.finite()?;
    let hi = sparse.max_value()?.finite()?;
    let range = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
    let union_lo = lo.min(dense.offset());
    let union_hi = hi.max(dense.offset() + dense.len() as i64 - 1);
    let union = usize::try_from(union_hi.checked_sub(union_lo)?)
        .ok()?
        .checked_add(1)?;
    if !dense_mix_bounded(dense.len(), range, union) {
        return None;
    }
    DenseDist::from_dist(sparse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::Fin;

    fn table_abc(pa: f64, pb: f64, pc: f64) -> (VarTable, Var, Var, Var) {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", pa);
        let b = vt.boolean("b", pb);
        let c = vt.boolean("c", pc);
        (vt, a, b, c)
    }

    fn min_tensor(v: Var, m: i64) -> DTree {
        DTree::Tensor(
            AggOp::Min,
            Box::new(DTree::VarLeaf(v)),
            Box::new(DTree::MConst(Fin(m))),
        )
    }

    #[test]
    fn arena_matches_recursive_shape() {
        let (_, a, b, _) = table_abc(0.5, 0.5, 0.5);
        let tree = DTree::SumS(
            Box::new(DTree::Prod(
                Box::new(DTree::VarLeaf(a)),
                Box::new(DTree::VarLeaf(b)),
            )),
            Box::new(DTree::SConst(SemiringValue::Bool(false))),
        );
        let arena = DTreeArena::from_tree(&tree);
        assert_eq!(arena.len(), tree.num_nodes());
        assert!(!arena.is_empty());
        assert!(arena.approx_bytes() > 0);
    }

    #[test]
    fn arena_evaluates_basic_nodes() {
        let (vt, a, b, _) = table_abc(0.3, 0.5, 0.5);
        let tree = DTree::Prod(Box::new(DTree::VarLeaf(a)), Box::new(DTree::VarLeaf(b)));
        let arena = DTreeArena::from_tree(&tree);
        let d = arena
            .semiring_distribution(&vt, SemiringKind::Bool)
            .unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.15).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn threshold_fold_matches_full_evaluation() {
        // [x⊗10 +min y⊗20 θ c] for every one-sided θ and several bounds: the
        // folded scalar walk must agree with a full evaluation through an
        // Eq-comparison tree (which never folds).
        let (vt, x, y, _) = table_abc(0.35, 0.8, 0.5);
        for theta in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt] {
            for bound in [0, 10, 15, 20, 25] {
                let alpha = DTree::SumM(
                    AggOp::Min,
                    Box::new(min_tensor(x, 10)),
                    Box::new(min_tensor(y, 20)),
                );
                let tree = DTree::Cmp(theta, Box::new(alpha), Box::new(DTree::MConst(Fin(bound))));
                let arena = DTreeArena::from_tree(&tree);
                // The fold plan must be armed on the root.
                assert!(arena.folds.last().unwrap().is_some(), "{theta:?} {bound}");
                let d = arena
                    .semiring_distribution(&vt, SemiringKind::Bool)
                    .unwrap();
                // Reference: P[min θ bound] by direct enumeration of the 4 worlds.
                let mut expected = 0.0;
                for (xv, px) in [(true, 0.35), (false, 0.65)] {
                    for (yv, py) in [(true, 0.8), (false, 0.2)] {
                        let mut m = MonoidValue::PosInf;
                        if xv {
                            m = m.min(Fin(10));
                        }
                        if yv {
                            m = m.min(Fin(20));
                        }
                        if theta.eval(&m, &Fin(bound)) {
                            expected += px * py;
                        }
                    }
                }
                assert!(
                    (d.prob(&SemiringValue::Bool(true)) - expected).abs() < 1e-12,
                    "{theta:?} {bound}: got {}, expected {expected}",
                    d.prob(&SemiringValue::Bool(true))
                );
            }
        }
    }

    #[test]
    fn constant_on_left_flips_the_fold() {
        let (vt, x, _, _) = table_abc(0.4, 0.5, 0.5);
        // [15 ≥ x⊗10] ⇔ [x⊗10 ≤ 15]: true iff x present (min 10) — P = 0.4?
        // No: x absent gives +∞ which is not ≤ 15, so P[true] = 0.4.
        let tree = DTree::Cmp(
            CmpOp::Ge,
            Box::new(DTree::MConst(Fin(15))),
            Box::new(min_tensor(x, 10)),
        );
        let arena = DTreeArena::from_tree(&tree);
        assert!(arena.folds.last().unwrap().is_some());
        let d = arena
            .semiring_distribution(&vt, SemiringKind::Bool)
            .unwrap();
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn equality_comparisons_do_not_fold() {
        let (_, x, _, _) = table_abc(0.4, 0.5, 0.5);
        let tree = DTree::Cmp(
            CmpOp::Eq,
            Box::new(min_tensor(x, 10)),
            Box::new(DTree::MConst(Fin(10))),
        );
        let arena = DTreeArena::from_tree(&tree);
        assert!(arena.folds.last().unwrap().is_none());
    }

    #[test]
    fn empty_sides_yield_empty_distributions() {
        // A ⊔ node with no branches has an empty (sort-unknown) distribution;
        // comparing it against anything yields the empty distribution, per the
        // documented contract.
        let (vt, a, _, _) = table_abc(0.4, 0.5, 0.5);
        let empty = DTree::Exclusive(a, vec![]);
        let tree = DTree::Cmp(CmpOp::Eq, Box::new(empty), Box::new(DTree::VarLeaf(a)));
        let d = tree.distribution(&vt, SemiringKind::Bool).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn malformed_sorts_still_error() {
        let (vt, a, _, _) = table_abc(0.3, 0.5, 0.5);
        let bad = DTree::Prod(Box::new(DTree::MConst(Fin(1))), Box::new(DTree::VarLeaf(a)));
        let arena = DTreeArena::from_tree(&bad);
        assert!(matches!(
            arena.mixed_distribution(&vt, SemiringKind::Bool),
            Err(DTreeError::ExpectedSemiring(_))
        ));
        let bad = DTree::Cmp(
            CmpOp::Le,
            Box::new(DTree::MConst(Fin(1))),
            Box::new(DTree::VarLeaf(a)),
        );
        // Constant on the left arms a fold, but the right side is semiring-sorted,
        // so the fold is refused and the mixed comparison reports the usual error.
        let arena = DTreeArena::from_tree(&bad);
        assert!(arena.folds.last().unwrap().is_none());
        assert_eq!(
            arena.mixed_distribution(&vt, SemiringKind::Bool),
            Err(DTreeError::MixedComparison)
        );
    }

    #[test]
    fn sum_comparisons_use_the_scan_fallback() {
        // COUNT sums do not decompose; the fold must still agree with the
        // recursive evaluation through the scan fallback.
        let (vt, a, b, c) = table_abc(0.5, 0.25, 0.75);
        let count = |v| {
            DTree::Tensor(
                AggOp::Count,
                Box::new(DTree::VarLeaf(v)),
                Box::new(DTree::MConst(Fin(1))),
            )
        };
        let alpha = DTree::SumM(
            AggOp::Count,
            Box::new(DTree::SumM(
                AggOp::Count,
                Box::new(count(a)),
                Box::new(count(b)),
            )),
            Box::new(count(c)),
        );
        let tree = DTree::Cmp(CmpOp::Ge, Box::new(alpha), Box::new(DTree::MConst(Fin(2))));
        let arena = DTreeArena::from_tree(&tree);
        assert!(arena.folds.last().unwrap().is_some());
        let d = arena
            .semiring_distribution(&vt, SemiringKind::Bool)
            .unwrap();
        // P[count >= 2] by enumeration: worlds with at least two of {a,b,c}.
        let (pa, pb, pc) = (0.5, 0.25, 0.75);
        let expected =
            pa * pb * pc + pa * pb * (1.0 - pc) + pa * (1.0 - pb) * pc + (1.0 - pa) * pb * pc;
        assert!((d.prob(&SemiringValue::Bool(true)) - expected).abs() < 1e-12);
    }
}
