//! Compilation of semiring and semimodule expressions into decomposition trees
//! (Algorithm 1 of the paper).
//!
//! The compiler repeatedly applies six decomposition rules:
//!
//! 1. **Constant** — an expression without variables becomes a constant leaf.
//! 2. **Independent sum** — a sum whose summands split into groups that share no
//!    variables becomes an `⊕` node over the groups (found via connected components of
//!    the variable co-occurrence graph).
//! 3. **Independent product / read-once factorisation** — a product of
//!    variable-disjoint factors becomes a `⊙` node; a sum whose summands all share a
//!    common factor is rewritten `(Π common) · (Σ quotients)` first, which is how
//!    read-once provenance (hierarchical queries) is compiled without case splits.
//! 4. **Scalar split** — a semimodule expression `Φ ⊗ α` with independent `Φ` and `α`
//!    becomes an `⊗` node.
//! 5. **Comparison split** — a conditional `[Φ θ Ψ]` over independent sides becomes a
//!    `[θ]` node (after pruning, cf. [`crate::prune`]).
//! 6. **Mutually exclusive case split** — otherwise a variable is chosen (the one with
//!    the most occurrences, as in the paper's implementation) and the expression is
//!    expanded into a `⊔` node with one branch per support value.

use crate::node::DTree;
use crate::prune::prune_conditional;
use pvc_algebra::SemiringKind;
use pvc_expr::factor::{common_factor_vars_of, divide_by_vars, factor_sum};
use pvc_expr::independence::components_of_occurrences_with;
use pvc_expr::{SemimoduleExpr, SemiringExpr, SmTerm, Var, VarSet, VarTable};

/// Options controlling which decomposition rules the compiler may use.
///
/// Disabling rules is used by the ablation benchmarks (Shannon-only compilation) and
/// by tests that exercise specific code paths; the defaults enable everything.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Enable rule 2 (independent-sum split) and the independent-product split.
    pub independence: bool,
    /// Enable the common-factor extraction of rule 3 (read-once factorisation).
    pub factoring: bool,
    /// Enable pruning of conditional expressions before compiling them.
    pub pruning: bool,
    /// Abort compilation once the produced tree exceeds this many nodes (a safety
    /// valve for experiments in the intractable regime). `None` disables the limit.
    pub node_budget: Option<usize>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            independence: true,
            factoring: true,
            pruning: true,
            node_budget: None,
        }
    }
}

impl CompileOptions {
    /// Options with every structural rule disabled: compilation degenerates to pure
    /// Shannon expansion (the ablation baseline).
    pub fn shannon_only() -> Self {
        CompileOptions {
            independence: false,
            factoring: false,
            pruning: false,
            node_budget: None,
        }
    }

    /// Builder: set the node budget (compilation aborts with
    /// [`BudgetExceeded`] beyond it).
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = Some(budget);
        self
    }

    /// Builder: enable or disable the independence rules (rule 2 and the
    /// independent-product split).
    pub fn with_independence(mut self, enabled: bool) -> Self {
        self.independence = enabled;
        self
    }

    /// Builder: enable or disable read-once factorisation (rule 3).
    pub fn with_factoring(mut self, enabled: bool) -> Self {
        self.factoring = enabled;
        self
    }

    /// Builder: enable or disable conditional pruning.
    pub fn with_pruning(mut self, enabled: bool) -> Self {
        self.pruning = enabled;
        self
    }
}

/// Statistics about one compilation run: how often each rule fired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Rule 2 applications (independent-sum splits), counted per produced `⊕` node.
    pub independent_sums: usize,
    /// Independent-product splits, counted per produced `⊙` node.
    pub independent_products: usize,
    /// Common-factor extractions (read-once factorisation steps).
    pub factorings: usize,
    /// `⊗` splits.
    pub tensor_splits: usize,
    /// `[θ]` splits.
    pub comparison_splits: usize,
    /// `⊔` expansions (Shannon / mutually exclusive case splits).
    pub exclusive_expansions: usize,
    /// Conditional expressions decided entirely by pruning.
    pub pruned_conditionals: usize,
}

/// Error raised when the node budget of [`CompileOptions`] is exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The number of nodes produced when compilation was aborted.
    pub nodes_produced: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "d-tree node budget exceeded after {} nodes",
            self.nodes_produced
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The expression compiler (Algorithm 1).
pub struct Compiler<'a> {
    table: &'a VarTable,
    kind: SemiringKind,
    options: CompileOptions,
    stats: CompileStats,
    nodes_produced: usize,
    /// Scratch for occurrence collection during `⊔`-variable choice (reused across
    /// the tens of thousands of Shannon expansions a hard compilation performs).
    occ_buf: Vec<Var>,
    /// Per-variable occurrence counters, indexed by `Var` id; entries touched by a
    /// choice are reset afterwards, so the vector stays allocated once.
    occ_counts: Vec<u32>,
    /// First-seen table for independence splitting
    /// ([`components_of_occurrences_with`]), likewise allocated once and reset
    /// per use.
    first_seen: Vec<usize>,
}

impl<'a> Compiler<'a> {
    /// Create a compiler over the given variable table and ambient semiring.
    pub fn new(table: &'a VarTable, kind: SemiringKind) -> Self {
        Self::with_options(table, kind, CompileOptions::default())
    }

    /// Create a compiler with explicit options.
    pub fn with_options(table: &'a VarTable, kind: SemiringKind, options: CompileOptions) -> Self {
        Compiler {
            table,
            kind,
            options,
            stats: CompileStats::default(),
            nodes_produced: 0,
            occ_buf: Vec::new(),
            occ_counts: vec![0; table.len()],
            first_seen: vec![usize::MAX; table.len()],
        }
    }

    /// Statistics of the rules applied so far.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    fn charge(&mut self, nodes: usize) -> Result<(), BudgetExceeded> {
        self.nodes_produced += nodes;
        if let Some(budget) = self.options.node_budget {
            if self.nodes_produced > budget {
                return Err(BudgetExceeded {
                    nodes_produced: self.nodes_produced,
                });
            }
        }
        Ok(())
    }

    /// Compile a semiring expression into a d-tree.
    pub fn compile_semiring(&mut self, expr: &SemiringExpr) -> Result<DTree, BudgetExceeded> {
        let expr = expr.simplify(self.kind);
        self.compile_semiring_inner(&expr)
    }

    /// Compile a semimodule expression into a d-tree.
    pub fn compile_semimodule(&mut self, expr: &SemimoduleExpr) -> Result<DTree, BudgetExceeded> {
        let expr = expr.simplify(self.kind);
        self.compile_semimodule_inner(&expr)
    }

    /// Compile an interned semiring expression (see [`pvc_expr::intern`]) into a
    /// d-tree. The id is resolved to its canonical rendering first, so compiling
    /// either of two commutatively-reordered expressions produces the same tree.
    pub fn compile_semiring_id(
        &mut self,
        interner: &pvc_expr::Interner,
        id: pvc_expr::ExprId,
    ) -> Result<DTree, BudgetExceeded> {
        self.compile_semiring(&interner.resolve(id))
    }

    /// Compile an interned semimodule expression into a d-tree.
    pub fn compile_semimodule_id(
        &mut self,
        interner: &pvc_expr::Interner,
        id: pvc_expr::AggExprId,
    ) -> Result<DTree, BudgetExceeded> {
        self.compile_semimodule(&interner.resolve_semimodule(id))
    }

    fn compile_semiring_inner(&mut self, expr: &SemiringExpr) -> Result<DTree, BudgetExceeded> {
        self.charge(1)?;
        match expr {
            SemiringExpr::Const(c) => Ok(DTree::SConst(*c)),
            SemiringExpr::Var(v) => Ok(DTree::VarLeaf(*v)),
            SemiringExpr::Add(children) => self.compile_sum(children),
            SemiringExpr::Mul(children) => self.compile_product(children),
            SemiringExpr::CmpSS(theta, lhs, rhs) => {
                if self.options.independence && lhs.vars().is_disjoint(&rhs.vars()) {
                    self.stats.comparison_splits += 1;
                    let l = self.compile_semiring_inner(lhs)?;
                    let r = self.compile_semiring_inner(rhs)?;
                    Ok(DTree::Cmp(*theta, Box::new(l), Box::new(r)))
                } else {
                    self.shannon_semiring(expr)
                }
            }
            SemiringExpr::CmpMM(..) => {
                let pruned = if self.options.pruning {
                    let p = prune_conditional(expr, self.kind);
                    if p.as_const().is_some() {
                        self.stats.pruned_conditionals += 1;
                    }
                    p
                } else {
                    expr.clone()
                };
                match &pruned {
                    SemiringExpr::Const(c) => Ok(DTree::SConst(*c)),
                    SemiringExpr::CmpMM(theta, lhs, rhs) => {
                        if self.options.independence && lhs.vars().is_disjoint(&rhs.vars()) {
                            self.stats.comparison_splits += 1;
                            let l = self.compile_semimodule_inner(&lhs.simplify(self.kind))?;
                            let r = self.compile_semimodule_inner(&rhs.simplify(self.kind))?;
                            Ok(DTree::Cmp(*theta, Box::new(l), Box::new(r)))
                        } else {
                            self.shannon_semiring(&pruned)
                        }
                    }
                    other => self.compile_semiring_inner(other),
                }
            }
        }
    }

    /// Rule 2 + rule 3 on an n-ary semiring sum.
    fn compile_sum(&mut self, children: &[SemiringExpr]) -> Result<DTree, BudgetExceeded> {
        if children.is_empty() {
            return Ok(DTree::SConst(self.kind.zero()));
        }
        if children.len() == 1 {
            return self.compile_semiring_inner(&children[0]);
        }
        if self.options.independence {
            // Components are computed over borrowed variable occurrences; children
            // are only cloned when an actual split happens (the common no-split case
            // used to deep-clone the whole child list every recursion level).
            let components =
                self.split_components(children.len(), |i, buf| children[i].collect_vars(buf));
            if components.len() > 1 {
                self.stats.independent_sums += components.len() - 1;
                let mut trees = Vec::with_capacity(components.len());
                for comp in &components {
                    let group: Vec<SemiringExpr> =
                        comp.iter().map(|&i| children[i].clone()).collect();
                    trees.push(self.compile_sum(&group)?);
                }
                return Ok(fold_binary(trees, |a, b| {
                    DTree::SumS(Box::new(a), Box::new(b))
                }));
            }
        }
        if self.options.factoring {
            if let Some((common, quotients)) = factor_sum(children) {
                let quotient_children: Vec<SemiringExpr> = quotients
                    .into_iter()
                    .map(|q| q.unwrap_or_else(|| SemiringExpr::one(self.kind)))
                    .collect();
                // The ⊙ node requires independent children: factoring is only sound
                // when the quotients no longer mention the extracted variables (they
                // still would if a variable occurred twice within one summand).
                let disjoint = quotient_children
                    .iter()
                    .all(|q| q.vars().is_disjoint(&common));
                if disjoint {
                    self.stats.factorings += 1;
                    let factor_tree = self.compile_var_product(&common)?;
                    let quotient_tree = self.compile_sum(&quotient_children)?;
                    self.stats.independent_products += 1;
                    return Ok(DTree::Prod(Box::new(factor_tree), Box::new(quotient_tree)));
                }
            }
        }
        self.shannon_semiring(&SemiringExpr::Add(children.to_vec()))
    }

    /// Independent-product split on an n-ary semiring product.
    fn compile_product(&mut self, children: &[SemiringExpr]) -> Result<DTree, BudgetExceeded> {
        if children.is_empty() {
            return Ok(DTree::SConst(self.kind.one()));
        }
        if children.len() == 1 {
            return self.compile_semiring_inner(&children[0]);
        }
        if self.options.independence {
            let components =
                self.split_components(children.len(), |i, buf| children[i].collect_vars(buf));
            if components.len() > 1 {
                self.stats.independent_products += components.len() - 1;
                let mut trees = Vec::with_capacity(components.len());
                for comp in &components {
                    let group: Vec<SemiringExpr> =
                        comp.iter().map(|&i| children[i].clone()).collect();
                    trees.push(self.compile_product(&group)?);
                }
                return Ok(fold_binary(trees, |a, b| {
                    DTree::Prod(Box::new(a), Box::new(b))
                }));
            }
        }
        self.shannon_semiring(&SemiringExpr::Mul(children.to_vec()))
    }

    /// Compile a product of distinct variables (the common factor pulled out of a
    /// sum). Distinct variables are pairwise independent by definition.
    fn compile_var_product(&mut self, vars: &VarSet) -> Result<DTree, BudgetExceeded> {
        let trees: Vec<DTree> = vars.iter().map(DTree::VarLeaf).collect();
        self.charge(trees.len())?;
        if trees.is_empty() {
            return Ok(DTree::SConst(self.kind.one()));
        }
        if trees.len() > 1 {
            self.stats.independent_products += trees.len() - 1;
        }
        Ok(fold_binary(trees, |a, b| {
            DTree::Prod(Box::new(a), Box::new(b))
        }))
    }

    fn compile_semimodule_inner(&mut self, expr: &SemimoduleExpr) -> Result<DTree, BudgetExceeded> {
        self.charge(1)?;
        // Rule 1: ground expressions fold to a monoid constant.
        if let Some(c) = expr.as_const() {
            return Ok(DTree::MConst(c));
        }
        let op = expr.op;
        // Rule 2: split the +op sum by independence of the terms' coefficients.
        // Variable sets are computed over borrowed terms; the term list is only
        // cloned (piecewise) when a split actually happens.
        if self.options.independence && expr.terms.len() > 1 {
            let components = self.split_components(expr.terms.len(), |i, buf| {
                expr.terms[i].coeff.collect_vars(buf)
            });
            if components.len() > 1 {
                self.stats.independent_sums += components.len() - 1;
                let mut trees = Vec::with_capacity(components.len());
                for comp in &components {
                    let sub = SemimoduleExpr {
                        op,
                        terms: comp.iter().map(|&i| expr.terms[i].clone()).collect(),
                    };
                    trees.push(self.compile_semimodule_inner(&sub)?);
                }
                return Ok(fold_binary(trees, |a, b| {
                    DTree::SumM(op, Box::new(a), Box::new(b))
                }));
            }
        }
        // Single term Φ ⊗ m: rule 4 (the coefficient and the constant are trivially
        // independent).
        if expr.terms.len() == 1 {
            let SmTerm { coeff, value } = &expr.terms[0];
            match coeff.as_const() {
                Some(c) => return Ok(DTree::MConst(op.scalar_action(&c, value))),
                None => {
                    self.stats.tensor_splits += 1;
                    let scalar = self.compile_semiring_inner(coeff)?;
                    self.charge(1)?;
                    return Ok(DTree::Tensor(
                        op,
                        Box::new(scalar),
                        Box::new(DTree::MConst(*value)),
                    ));
                }
            }
        }
        // Rule 3/4 combined: pull a semiring factor common to every term out of the
        // sum, producing Φ ⊗ (Σ quotients).
        if self.options.factoring {
            let common = common_factor_vars_of(expr.terms.iter().map(|t| &t.coeff));
            if !common.is_empty() {
                let quotient = SemimoduleExpr {
                    op,
                    terms: expr
                        .terms
                        .iter()
                        .map(|t| SmTerm {
                            coeff: divide_by_vars(&t.coeff, &common)
                                .unwrap_or_else(|| SemiringExpr::one(self.kind)),
                            value: t.value,
                        })
                        .collect(),
                };
                // As for sums, the ⊗ node requires the scalar and the residual
                // semimodule expression to be variable-disjoint.
                if quotient.vars().is_disjoint(&common) {
                    self.stats.factorings += 1;
                    self.stats.tensor_splits += 1;
                    let scalar_tree = self.compile_var_product(&common)?;
                    let value_tree = self.compile_semimodule_inner(&quotient)?;
                    return Ok(DTree::Tensor(
                        op,
                        Box::new(scalar_tree),
                        Box::new(value_tree),
                    ));
                }
            }
        }
        // Rule 6: mutually exclusive case split on the most frequent variable.
        self.shannon_semimodule(expr)
    }

    /// Partition `n` items into independence components of the variable
    /// co-occurrence graph. `collect(i, buf)` pushes item `i`'s variable
    /// occurrences; the shared scratch buffer avoids building a sorted `VarSet`
    /// per item per recursion level (rule 2's former dominant cost).
    fn split_components(
        &mut self,
        n: usize,
        mut collect: impl FnMut(usize, &mut Vec<Var>),
    ) -> Vec<Vec<usize>> {
        let mut buf = std::mem::take(&mut self.occ_buf);
        buf.clear();
        let mut spans = Vec::with_capacity(n);
        for i in 0..n {
            let start = buf.len();
            collect(i, &mut buf);
            spans.push((start, buf.len()));
        }
        let components = components_of_occurrences_with(&spans, &buf, &mut self.first_seen);
        self.occ_buf = buf;
        components
    }

    /// Choose the variable with the most occurrences (ties broken by smallest id,
    /// for determinism) — the heuristic used in the paper's implementation.
    ///
    /// Occurrences are tallied in a reusable id-indexed counter vector instead of a
    /// fresh `BTreeMap` per expansion; only the touched entries are reset.
    fn choose_split_var(&mut self, collect: impl FnOnce(&mut Vec<Var>)) -> Var {
        self.occ_buf.clear();
        collect(&mut self.occ_buf);
        for v in &self.occ_buf {
            self.occ_counts[v.0 as usize] += 1;
        }
        let mut best: Option<(u32, Var)> = None;
        for &v in &self.occ_buf {
            let n = self.occ_counts[v.0 as usize];
            best = Some(match best {
                None => (n, v),
                Some((bn, bv)) if n > bn || (n == bn && v < bv) => (n, v),
                Some(b) => b,
            });
        }
        for v in &self.occ_buf {
            self.occ_counts[v.0 as usize] = 0;
        }
        best.map(|(_, v)| v)
            .expect("expression with no variables reached Shannon expansion")
    }

    fn shannon_semiring(&mut self, expr: &SemiringExpr) -> Result<DTree, BudgetExceeded> {
        let var = self.choose_split_var(|buf| expr.collect_vars(buf));
        self.stats.exclusive_expansions += 1;
        let kind = self.kind;
        let table = self.table;
        let dist = table.dist(var);
        let mut branches = Vec::with_capacity(dist.support_size());
        for (value, _) in dist.iter() {
            let child_expr = expr.substitute_simplify(var, *value, kind);
            let child = self.compile_semiring_inner(&child_expr)?;
            branches.push((*value, child));
        }
        self.charge(1)?;
        Ok(DTree::Exclusive(var, branches))
    }

    fn shannon_semimodule(&mut self, expr: &SemimoduleExpr) -> Result<DTree, BudgetExceeded> {
        let var = self.choose_split_var(|buf| {
            for t in &expr.terms {
                t.coeff.collect_vars(buf);
            }
        });
        self.stats.exclusive_expansions += 1;
        let kind = self.kind;
        let table = self.table;
        let dist = table.dist(var);
        let mut branches = Vec::with_capacity(dist.support_size());
        for (value, _) in dist.iter() {
            let child_expr = expr.substitute_simplify(var, *value, kind);
            let child = self.compile_semimodule_inner(&child_expr)?;
            branches.push((*value, child));
        }
        self.charge(1)?;
        Ok(DTree::Exclusive(var, branches))
    }
}

/// Fold a non-empty list of trees into a left-deep binary tree.
fn fold_binary(mut trees: Vec<DTree>, combine: impl Fn(DTree, DTree) -> DTree) -> DTree {
    debug_assert!(!trees.is_empty());
    let mut acc = trees.remove(0);
    for t in trees {
        acc = combine(acc, t);
    }
    acc
}

/// Compile a semiring expression and return its d-tree (default options).
pub fn compile_semiring(expr: &SemiringExpr, table: &VarTable, kind: SemiringKind) -> DTree {
    Compiler::new(table, kind)
        .compile_semiring(expr)
        .expect("no node budget configured")
}

/// Compile a semimodule expression and return its d-tree (default options).
pub fn compile_semimodule(expr: &SemimoduleExpr, table: &VarTable, kind: SemiringKind) -> DTree {
    Compiler::new(table, kind)
        .compile_semimodule(expr)
        .expect("no node budget configured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, CmpOp, MonoidValue::Fin, SemiringValue};
    use pvc_expr::oracle;

    fn v(x: Var) -> SemiringExpr {
        SemiringExpr::Var(x)
    }

    #[test]
    fn read_once_expression_compiles_without_case_splits() {
        // x1(y11 + y12) + x2(y21 + y22): hierarchical provenance, Example 14.
        let mut vt = VarTable::new();
        let x1 = vt.boolean("x1", 0.5);
        let y11 = vt.boolean("y11", 0.5);
        let y12 = vt.boolean("y12", 0.5);
        let x2 = vt.boolean("x2", 0.5);
        let y21 = vt.boolean("y21", 0.5);
        let y22 = vt.boolean("y22", 0.5);
        let expr = SemiringExpr::sum(vec![
            v(x1) * v(y11),
            v(x1) * v(y12),
            v(x2) * v(y21),
            v(x2) * v(y22),
        ]);
        let mut compiler = Compiler::new(&vt, SemiringKind::Bool);
        let tree = compiler.compile_semiring(&expr).unwrap();
        assert_eq!(tree.num_exclusive_nodes(), 0, "read-once needs no ⊔ nodes");
        assert!(compiler.stats().factorings >= 2);
        assert!(compiler.stats().independent_sums >= 1);
        // Probability agrees with the oracle.
        let dist = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn shared_variable_forces_case_split() {
        // a(b + c) + c·d: c occurs in both summands (Figure 5 shape).
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.4);
        let b = vt.boolean("b", 0.3);
        let c = vt.boolean("c", 0.6);
        let d = vt.boolean("d", 0.7);
        let expr = SemiringExpr::sum(vec![v(a) * (v(b) + v(c)), v(c) * v(d)]);
        let mut compiler = Compiler::new(&vt, SemiringKind::Bool);
        let tree = compiler.compile_semiring(&expr).unwrap();
        assert!(tree.num_exclusive_nodes() >= 1);
        let dist = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn figure5_semimodule_example() {
        // α = a(b + c) ⊗ 10 + c ⊗ 20 over N⊗N with a,b,c valued in {1,2}
        // (Example 12 / Figure 5 of the paper).
        let mut vt = VarTable::new();
        let pa = 0.3;
        let pb = 0.6;
        let pc = 0.8;
        let a = vt.natural("a", &[(1, pa), (2, 1.0 - pa)]);
        let b = vt.natural("b", &[(1, pb), (2, 1.0 - pb)]);
        let c = vt.natural("c", &[(1, pc), (2, 1.0 - pc)]);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![(v(a) * (v(b) + v(c)), Fin(10)), (v(c), Fin(20))],
        );
        let mut compiler = Compiler::new(&vt, SemiringKind::Nat);
        let tree = compiler.compile_semimodule(&alpha).unwrap();
        // c is shared, so exactly one ⊔ node on c is expected at the top.
        assert!(matches!(tree, DTree::Exclusive(var, _) if var == c));
        let dist = tree.monoid_distribution(&vt, SemiringKind::Nat).unwrap();
        let oracle_dist = oracle::semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Nat);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        // Example 12 closed forms, e.g. P[40] = pa·pb·pc and P[80] = p̄a·p̄b·pc + pa·p̄b·p̄c.
        assert!((dist.prob(&Fin(40)) - pa * pb * pc).abs() < 1e-9);
        assert!(
            (dist.prob(&Fin(80)) - ((1.0 - pa) * (1.0 - pb) * pc + pa * (1.0 - pb) * (1.0 - pc)))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn figure6_gap_annotation() {
        // x4y41(z1+z5)⊗15 +max x4y43z3⊗60 +max x5y51(z1+z5)⊗10 over B⊗N (Figure 6).
        let mut vt = VarTable::new();
        let x4 = vt.boolean("x4", 0.5);
        let x5 = vt.boolean("x5", 0.5);
        let y41 = vt.boolean("y41", 0.5);
        let y43 = vt.boolean("y43", 0.5);
        let y51 = vt.boolean("y51", 0.5);
        let z1 = vt.boolean("z1", 0.5);
        let z3 = vt.boolean("z3", 0.5);
        let z5 = vt.boolean("z5", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (v(x4) * v(y41) * (v(z1) + v(z5)), Fin(15)),
                (v(x4) * v(y43) * v(z3), Fin(60)),
                (v(x5) * v(y51) * (v(z1) + v(z5)), Fin(10)),
            ],
        );
        let mut compiler = Compiler::new(&vt, SemiringKind::Bool);
        let tree = compiler.compile_semimodule(&alpha).unwrap();
        let dist = tree.monoid_distribution(&vt, SemiringKind::Bool).unwrap();
        let oracle_dist = oracle::semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        // The d-tree is small: the paper's Figure 6 compiles with a single ⊔ on x4 or
        // a similarly shared variable.
        assert!(tree.num_exclusive_nodes() <= 3);
    }

    #[test]
    fn conditional_with_independent_sides_splits() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.5);
        let lhs = SemimoduleExpr::tensor(AggOp::Min, v(a), Fin(10));
        let rhs = SemimoduleExpr::tensor(AggOp::Min, v(b), Fin(20));
        let expr = SemiringExpr::cmp_mm(CmpOp::Le, lhs, rhs);
        let mut compiler = Compiler::new(&vt, SemiringKind::Bool);
        let tree = compiler.compile_semiring(&expr).unwrap();
        assert_eq!(compiler.stats().comparison_splits, 1);
        let dist = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn conditional_with_shared_variables_uses_case_split() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.5);
        let lhs = SemimoduleExpr::from_terms(AggOp::Sum, vec![(v(a), Fin(10)), (v(b), Fin(5))]);
        let rhs = SemimoduleExpr::from_terms(AggOp::Sum, vec![(v(a), Fin(7)), (v(b), Fin(7))]);
        let expr = SemiringExpr::cmp_mm(CmpOp::Ge, lhs, rhs);
        let mut compiler = Compiler::new(&vt, SemiringKind::Bool);
        let tree = compiler.compile_semiring(&expr).unwrap();
        let dist = tree.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        assert!(tree.num_exclusive_nodes() >= 1);
    }

    #[test]
    fn shannon_only_ablation_agrees_but_is_larger() {
        let mut vt = VarTable::new();
        let vars: Vec<Var> = (0..6).map(|i| vt.boolean(format!("x{i}"), 0.5)).collect();
        let expr = SemiringExpr::sum(vec![
            v(vars[0]) * v(vars[1]),
            v(vars[2]) * v(vars[3]),
            v(vars[4]) * v(vars[5]),
        ]);
        let full = Compiler::new(&vt, SemiringKind::Bool)
            .compile_semiring(&expr)
            .unwrap();
        let shannon =
            Compiler::with_options(&vt, SemiringKind::Bool, CompileOptions::shannon_only())
                .compile_semiring(&expr)
                .unwrap();
        let d1 = full.semiring_distribution(&vt, SemiringKind::Bool).unwrap();
        let d2 = shannon
            .semiring_distribution(&vt, SemiringKind::Bool)
            .unwrap();
        assert!(d1.approx_eq(&d2, 1e-9));
        assert!(shannon.num_nodes() > full.num_nodes());
        assert_eq!(full.num_exclusive_nodes(), 0);
        assert!(shannon.num_exclusive_nodes() > 0);
    }

    #[test]
    fn node_budget_aborts() {
        let mut vt = VarTable::new();
        let vars: Vec<Var> = (0..10).map(|i| vt.boolean(format!("x{i}"), 0.5)).collect();
        // A highly entangled expression that needs many case splits under
        // Shannon-only compilation.
        let terms: Vec<SemiringExpr> = (0..9)
            .map(|i| v(vars[i]) * v(vars[i + 1]) * v(vars[(i + 5) % 10]))
            .collect();
        let expr = SemiringExpr::sum(terms);
        let mut options = CompileOptions::shannon_only();
        options.node_budget = Some(50);
        let mut compiler = Compiler::with_options(&vt, SemiringKind::Bool, options);
        assert!(compiler.compile_semiring(&expr).is_err());
    }

    #[test]
    fn nat_valued_variables_factor_instead_of_splitting() {
        let mut vt = VarTable::new();
        let x = vt.natural("x", &[(0, 0.2), (1, 0.3), (2, 0.5)]);
        let y = vt.natural("y", &[(1, 0.5), (3, 0.5)]);
        // x·y + x factors as x·(y + 1): no case split required.
        let expr = SemiringExpr::sum(vec![v(x) * v(y), v(x)]);
        let mut compiler = Compiler::new(&vt, SemiringKind::Nat);
        let tree = compiler.compile_semiring(&expr).unwrap();
        assert_eq!(tree.num_exclusive_nodes(), 0);
        assert!(compiler.stats().factorings >= 1);
        let dist = tree.semiring_distribution(&vt, SemiringKind::Nat).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Nat);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn nat_valued_variables_case_split_over_full_support() {
        let mut vt = VarTable::new();
        let x = vt.natural("x", &[(0, 0.2), (1, 0.3), (2, 0.5)]);
        let y = vt.natural("y", &[(1, 0.5), (3, 0.5)]);
        // x·y + x + y: x and y both repeat but no factor is common to all three
        // summands, so a ⊔ node over the full support of the chosen variable appears.
        let expr = SemiringExpr::sum(vec![v(x) * v(y), v(x), v(y)]);
        let mut compiler = Compiler::new(&vt, SemiringKind::Nat);
        let tree = compiler.compile_semiring(&expr).unwrap();
        match &tree {
            DTree::Exclusive(var, branches) => {
                assert_eq!(*var, x);
                assert_eq!(branches.len(), 3);
            }
            other => panic!("expected ⊔ at the root, got {other:?}"),
        }
        let dist = tree.semiring_distribution(&vt, SemiringKind::Nat).unwrap();
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Nat);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn empty_and_constant_expressions() {
        let vt = VarTable::new();
        let kind = SemiringKind::Bool;
        let zero = SemiringExpr::Add(vec![]);
        let tree = compile_semiring(&zero, &vt, kind);
        assert_eq!(tree, DTree::SConst(SemiringValue::Bool(false)));
        let alpha = SemimoduleExpr::zero(AggOp::Min);
        let tree = compile_semimodule(&alpha, &vt, kind);
        assert_eq!(tree, DTree::MConst(pvc_algebra::MonoidValue::PosInf));
    }
}
