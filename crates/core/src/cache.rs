//! The canonical compilation cache: bounded memoisation of d-tree compilation
//! artifacts (semiring distributions / confidences and aggregate monoid
//! distributions), keyed by the **canonical ids** of the hash-consed expression
//! arena ([`pvc_expr::intern`]).
//!
//! Two pieces live here:
//!
//! * [`CompilationCache`] — an LRU store with configurable entry- and byte-bounds
//!   ([`CacheConfig`]) and hit/miss/eviction/cross-scope counters
//!   ([`CacheCounters`]). Keys are [`ExprId`] / [`AggExprId`], which are canonical
//!   under commutative operand reordering, so structurally-equal provenance compiled
//!   under *different renderings* shares one entry.
//! * [`CachedEvaluator`] — the cache-aware evaluation driver: it consults the cache
//!   at every independent sub-d-tree (mirroring the compiler's rule 2 split), so a
//!   large annotation whose independent components recur elsewhere reuses their
//!   distributions without recompiling, and newly computed sub-distributions are
//!   inserted on the way out.
//! * [`SharedArtifacts`] — the **thread-safe, `Arc`-shareable** pairing of an
//!   [`Interner`] and a [`CompilationCache`] behind mutexes, with the same
//!   independence-splitting evaluation as [`CachedEvaluator`] but **lock-granular**:
//!   locks are held only around intern/lookup/insert operations, never across a
//!   d-tree compilation, so parallel tuple workers share artifacts without
//!   serialising their compilations. One `Arc<SharedArtifacts>` can also back
//!   several engines (multi-tenant serving over one database).
//!
//! Caching distributions (rather than bare confidences) is what makes sub-d-tree
//! composition possible: independent sums/products combine cached distributions by
//! convolution (Eqs. 4–7 of the paper) in time `O(|p_1|·|p_2|)`.
//!
//! Correctness contract: cached artifacts are functions of (expression structure,
//! variable distributions, ambient semiring). Callers must clear the cache whenever
//! variable distributions change, and must bypass it when compilation is made
//! observably fallible (node budgets) — the engine in `pvc-db` does both.

use crate::arena::DTreeArena;
use crate::compile::{BudgetExceeded, CompileOptions, Compiler};
use crate::node::DTreeError;
use pvc_algebra::{AggOp, SemiringKind};
use pvc_expr::independence::connected_components;
use pvc_expr::intern::{AggExprId, ExprId, InternedExpr, Interner};
use pvc_expr::{SemimoduleExpr, SemiringExpr, VarSet, VarTable};
use pvc_prob::{convolve_additive_chained, ChainVal, MonoidDist, SemiringDist};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Size bounds for the [`CompilationCache`]. **Each of the four artifact maps**
/// (semiring distributions, aggregate distributions, semiring arenas, aggregate
/// arenas) enforces both bounds independently — the worst-case total footprint is
/// therefore `4 × max_bytes` / `4 × max_entries`; size a memory budget
/// accordingly. The least-recently-used entry of a map is evicted first, and at
/// least one entry is always retained per map, so a single oversized artifact
/// cannot render the cache useless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of entries per artifact map.
    pub max_entries: usize,
    /// Maximum approximate payload bytes per artifact map.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1 << 16,
            max_bytes: 64 << 20,
        }
    }
}

/// Monotonic counters describing cache behaviour since the last clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
    /// Hits whose entry was inserted under a *different scope* (the engine scopes
    /// lookups by query, so these are cross-query reuses).
    pub cross_scope_hits: u64,
    /// Entries evicted by the LRU bounds.
    pub evictions: u64,
    /// Compiled-arena lookups answered from the cache (a hit skips both d-tree
    /// compilation and flattening; only the arena evaluation runs).
    pub arena_hits: u64,
    /// Compiled-arena lookups that had to compile.
    pub arena_misses: u64,
}

/// A doubly-linked LRU map from `u32` canonical ids to artifacts.
///
/// Implemented over a slab (`Vec<Option<Entry>>` + free list) so that promotion and
/// eviction are O(1) and no external crate is needed.
#[derive(Debug)]
struct Lru<V> {
    map: HashMap<u32, usize>,
    slots: Vec<Option<LruEntry<V>>>,
    free: Vec<usize>,
    head: usize, // most recently used; NONE when empty
    tail: usize, // least recently used; NONE when empty
    bytes: usize,
}

#[derive(Debug)]
struct LruEntry<V> {
    key: u32,
    value: V,
    bytes: usize,
    scope: u64,
    prev: usize,
    next: usize,
}

const NONE: usize = usize::MAX;

impl<V> Lru<V> {
    fn new() -> Self {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            bytes: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
        self.bytes = 0;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.slots[slot].as_ref().expect("linked slot");
            (e.prev, e.next)
        };
        if prev != NONE {
            self.slots[prev].as_mut().expect("linked slot").next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].as_mut().expect("linked slot").prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        {
            let e = self.slots[slot].as_mut().expect("slot");
            e.prev = NONE;
            e.next = self.head;
        }
        if self.head != NONE {
            self.slots[self.head].as_mut().expect("head slot").prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Look up and promote to most-recently-used. Returns the value and the scope
    /// the entry was inserted under.
    fn get(&mut self, key: u32) -> Option<(&V, u64)> {
        let slot = *self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        let e = self.slots[slot].as_ref().expect("slot");
        Some((&e.value, e.scope))
    }

    /// Every entry as `(key, scope, value)`, least-recently-used first — the
    /// order the snapshot codec replays inserts in, so restoring reproduces the
    /// recency order. Does not promote.
    fn entries_oldest_first(&self) -> Vec<(u32, u64, &V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.tail;
        while cur != NONE {
            let e = self.slots[cur].as_ref().expect("linked slot");
            out.push((e.key, e.scope, &e.value));
            cur = e.prev;
        }
        out
    }

    /// Remove one entry by key, leaving the recency order of the others intact.
    /// Returns true if the key was present.
    fn remove(&mut self, key: u32) -> bool {
        let Some(slot) = self.map.remove(&key) else {
            return false;
        };
        self.unlink(slot);
        let e = self.slots[slot].take().expect("mapped slot");
        self.bytes -= e.bytes;
        self.free.push(slot);
        true
    }

    /// Insert or replace; evicts least-recently-used entries beyond the bounds.
    /// Returns the number of evictions performed.
    fn insert(
        &mut self,
        key: u32,
        value: V,
        bytes: usize,
        scope: u64,
        config: &CacheConfig,
    ) -> u64 {
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            let e = self.slots[slot].as_mut().expect("slot");
            self.bytes = self.bytes - e.bytes + bytes;
            e.value = value;
            e.bytes = bytes;
            e.scope = scope;
            self.push_front(slot);
        } else {
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s] = Some(LruEntry {
                        key,
                        value,
                        bytes,
                        scope,
                        prev: NONE,
                        next: NONE,
                    });
                    s
                }
                None => {
                    self.slots.push(Some(LruEntry {
                        key,
                        value,
                        bytes,
                        scope,
                        prev: NONE,
                        next: NONE,
                    }));
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, slot);
            self.bytes += bytes;
            self.push_front(slot);
        }
        let mut evictions = 0;
        while self.len() > 1 && (self.len() > config.max_entries || self.bytes > config.max_bytes) {
            let victim = self.tail;
            self.unlink(victim);
            let e = self.slots[victim].take().expect("tail slot");
            self.map.remove(&e.key);
            self.bytes -= e.bytes;
            self.free.push(victim);
            evictions += 1;
        }
        evictions
    }
}

/// Approximate payload size of a distribution: support entries times the size of a
/// `(value, f64)` pair plus per-entry B-tree overhead.
fn dist_bytes<T: Ord + Clone>(d: &pvc_prob::Dist<T>) -> usize {
    64 + d.support_size() * (std::mem::size_of::<T>() + std::mem::size_of::<f64>() + 32)
}

/// The bounded memo store for compilation artifacts. See the [module
/// documentation](self).
#[derive(Debug)]
pub struct CompilationCache {
    config: CacheConfig,
    semiring: Lru<SemiringDist>,
    aggregate: Lru<MonoidDist>,
    /// Compiled, flattened d-trees ([`DTreeArena`]) for semiring expressions.
    /// Kept alongside the distributions so that a distribution-cache miss (or a
    /// confidence-only evaluation after eviction) reuses the compiled artifact
    /// and only re-runs the cheap arena evaluation.
    sem_arenas: Lru<Arc<DTreeArena>>,
    /// Compiled arenas for semimodule (aggregate) expressions.
    agg_arenas: Lru<Arc<DTreeArena>>,
    counters: CacheCounters,
}

impl Default for CompilationCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl CompilationCache {
    /// An empty cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        CompilationCache {
            config,
            semiring: Lru::new(),
            aggregate: Lru::new(),
            sem_arenas: Lru::new(),
            agg_arenas: Lru::new(),
            counters: CacheCounters::default(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters since the last [`clear`](Self::clear).
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of cached semiring distributions.
    pub fn semiring_entries(&self) -> usize {
        self.semiring.len()
    }

    /// Number of cached aggregate distributions.
    pub fn aggregate_entries(&self) -> usize {
        self.aggregate.len()
    }

    /// Number of cached compiled arenas (semiring + aggregate).
    pub fn arena_entries(&self) -> usize {
        self.sem_arenas.len() + self.agg_arenas.len()
    }

    /// Approximate payload bytes across all artifact maps.
    pub fn bytes(&self) -> usize {
        self.semiring.bytes()
            + self.aggregate.bytes()
            + self.sem_arenas.bytes()
            + self.agg_arenas.bytes()
    }

    /// Drop every entry and reset the counters (used when the underlying variable
    /// distributions change).
    pub fn clear(&mut self) {
        self.semiring.clear();
        self.aggregate.clear();
        self.sem_arenas.clear();
        self.agg_arenas.clear();
        self.counters = CacheCounters::default();
    }

    /// Export every cached artifact with its key and insertion scope, each map
    /// in least-recently-used-first order — the save half of the snapshot codec
    /// in [`crate::persist`]. Read-only: no promotions, no counter changes.
    pub(crate) fn export(&self) -> CacheExport<'_> {
        CacheExport {
            semiring: self.semiring.entries_oldest_first(),
            aggregate: self.aggregate.entries_oldest_first(),
            sem_arenas: self.sem_arenas.entries_oldest_first(),
            agg_arenas: self.agg_arenas.entries_oldest_first(),
        }
    }

    /// Cached compiled arena for a semiring expression, promoting the entry.
    pub fn get_semiring_arena(&mut self, id: ExprId) -> Option<Arc<DTreeArena>> {
        match self.sem_arenas.get(id.0) {
            Some((a, _)) => {
                self.counters.arena_hits += 1;
                crate::obs::core_metrics().cache_arena_hit.inc();
                Some(Arc::clone(a))
            }
            None => {
                self.counters.arena_misses += 1;
                crate::obs::core_metrics().cache_arena_miss.inc();
                None
            }
        }
    }

    /// Insert the compiled arena of a semiring expression.
    pub fn insert_semiring_arena(&mut self, id: ExprId, scope: u64, arena: &Arc<DTreeArena>) {
        let bytes = arena.approx_bytes();
        let evicted = self
            .sem_arenas
            .insert(id.0, Arc::clone(arena), bytes, scope, &self.config);
        self.counters.evictions += evicted;
        crate::obs::core_metrics().cache_eviction.add(evicted);
    }

    /// Cached compiled arena for a semimodule expression, promoting the entry.
    pub fn get_aggregate_arena(&mut self, id: AggExprId) -> Option<Arc<DTreeArena>> {
        match self.agg_arenas.get(id.0) {
            Some((a, _)) => {
                self.counters.arena_hits += 1;
                crate::obs::core_metrics().cache_arena_hit.inc();
                Some(Arc::clone(a))
            }
            None => {
                self.counters.arena_misses += 1;
                crate::obs::core_metrics().cache_arena_miss.inc();
                None
            }
        }
    }

    /// Insert the compiled arena of a semimodule expression.
    pub fn insert_aggregate_arena(&mut self, id: AggExprId, scope: u64, arena: &Arc<DTreeArena>) {
        let bytes = arena.approx_bytes();
        let evicted = self
            .agg_arenas
            .insert(id.0, Arc::clone(arena), bytes, scope, &self.config);
        self.counters.evictions += evicted;
        crate::obs::core_metrics().cache_eviction.add(evicted);
    }

    /// Cached distribution of a semiring expression, promoting the entry. `scope`
    /// identifies the caller's query; a hit against an entry from another scope is
    /// counted as a cross-scope (cross-query) hit.
    pub fn get_semiring(&mut self, id: ExprId, scope: u64) -> Option<SemiringDist> {
        self.map_semiring(id, scope, SemiringDist::clone)
    }

    /// As [`get_semiring`](Self::get_semiring), but reduces the cached distribution
    /// under the borrow — no clone. This is the warm path for callers that only
    /// need a scalar (e.g. the tuple confidence).
    pub fn map_semiring<R>(
        &mut self,
        id: ExprId,
        scope: u64,
        f: impl FnOnce(&SemiringDist) -> R,
    ) -> Option<R> {
        match self.semiring.get(id.0) {
            Some((d, entry_scope)) => {
                let r = f(d);
                self.counters.hits += 1;
                crate::obs::core_metrics().cache_semiring_hit.inc();
                if entry_scope != scope {
                    self.counters.cross_scope_hits += 1;
                }
                Some(r)
            }
            None => {
                self.counters.misses += 1;
                crate::obs::core_metrics().cache_semiring_miss.inc();
                None
            }
        }
    }

    /// Insert the distribution of a semiring expression.
    pub fn insert_semiring(&mut self, id: ExprId, scope: u64, dist: &SemiringDist) {
        let bytes = dist_bytes(dist);
        let evicted = self
            .semiring
            .insert(id.0, dist.clone(), bytes, scope, &self.config);
        self.counters.evictions += evicted;
        crate::obs::core_metrics().cache_eviction.add(evicted);
    }

    /// Cached distribution of a semimodule (aggregate) expression.
    pub fn get_aggregate(&mut self, id: AggExprId, scope: u64) -> Option<MonoidDist> {
        match self.aggregate.get(id.0) {
            Some((d, entry_scope)) => {
                let d = d.clone();
                self.counters.hits += 1;
                crate::obs::core_metrics().cache_aggregate_hit.inc();
                if entry_scope != scope {
                    self.counters.cross_scope_hits += 1;
                }
                Some(d)
            }
            None => {
                self.counters.misses += 1;
                crate::obs::core_metrics().cache_aggregate_miss.inc();
                None
            }
        }
    }

    /// Insert the distribution of a semimodule expression.
    pub fn insert_aggregate(&mut self, id: AggExprId, scope: u64, dist: &MonoidDist) {
        let bytes = dist_bytes(dist);
        let evicted = self
            .aggregate
            .insert(id.0, dist.clone(), bytes, scope, &self.config);
        self.counters.evictions += evicted;
        crate::obs::core_metrics().cache_eviction.add(evicted);
    }
}

/// The borrowed artifact listing produced by [`CompilationCache::export`]:
/// every map's entries as `(key, scope, value)` in least-recently-used-first
/// order.
#[derive(Debug)]
pub(crate) struct CacheExport<'a> {
    pub(crate) semiring: Vec<(u32, u64, &'a SemiringDist)>,
    pub(crate) aggregate: Vec<(u32, u64, &'a MonoidDist)>,
    pub(crate) sem_arenas: Vec<(u32, u64, &'a Arc<DTreeArena>)>,
    pub(crate) agg_arenas: Vec<(u32, u64, &'a Arc<DTreeArena>)>,
}

/// Errors raised by the cache-aware evaluator: either compilation exceeded its node
/// budget or a malformed d-tree was evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The d-tree node budget of [`CompileOptions`] was exceeded.
    Budget(BudgetExceeded),
    /// Distribution extraction failed on a malformed tree.
    Tree(DTreeError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Budget(e) => write!(f, "{e}"),
            EvalError::Tree(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BudgetExceeded> for EvalError {
    fn from(e: BudgetExceeded) -> Self {
        EvalError::Budget(e)
    }
}

impl From<DTreeError> for EvalError {
    fn from(e: DTreeError) -> Self {
        EvalError::Tree(e)
    }
}

/// Cache-aware evaluation of interned expressions: get-or-compute distributions,
/// splitting on independence so that every independent sub-d-tree is memoised
/// individually.
///
/// This is the single-threaded variant working on exclusive borrows;
/// [`SharedArtifacts`] implements the same splitting strategy over mutex-guarded
/// state for parallel workers. The two must stay in lockstep — the test
/// `shared_artifacts_match_cached_evaluator` pins their equivalence.
pub struct CachedEvaluator<'a> {
    interner: &'a mut Interner,
    cache: &'a mut CompilationCache,
    vars: &'a VarTable,
    kind: SemiringKind,
    options: CompileOptions,
    scope: u64,
}

impl<'a> CachedEvaluator<'a> {
    /// Create an evaluator over an arena, a cache and a variable table. `scope`
    /// tags inserts for cross-scope hit accounting (use a per-query value).
    pub fn new(
        interner: &'a mut Interner,
        cache: &'a mut CompilationCache,
        vars: &'a VarTable,
        kind: SemiringKind,
        options: CompileOptions,
        scope: u64,
    ) -> Self {
        CachedEvaluator {
            interner,
            cache,
            vars,
            kind,
            options,
            scope,
        }
    }

    /// The probability that the expression does not evaluate to `0_S` (the tuple
    /// confidence), via the cached distribution (reduced under the borrow on the
    /// warm path — no clone).
    pub fn confidence(&mut self, id: ExprId) -> Result<f64, EvalError> {
        if let Some(c) = self.cache.map_semiring(id, self.scope, confidence_of) {
            return Ok(c);
        }
        let dist = self.fill_semiring(id)?;
        Ok(confidence_of(&dist))
    }

    /// Get-or-compute the distribution of an interned semiring expression.
    pub fn semiring_distribution(&mut self, id: ExprId) -> Result<SemiringDist, EvalError> {
        if let Some(d) = self.cache.get_semiring(id, self.scope) {
            return Ok(d);
        }
        self.fill_semiring(id)
    }

    /// Compute the distribution of `id` (assuming the caller already observed a
    /// cache miss) and insert it. Independent sub-expressions are evaluated through
    /// [`semiring_distribution`](Self::semiring_distribution), so recurring
    /// components hit the cache even when the whole expression is new.
    pub fn fill_semiring(&mut self, id: ExprId) -> Result<SemiringDist, EvalError> {
        let dist = self.compute_semiring(id)?;
        self.cache.insert_semiring(id, self.scope, &dist);
        Ok(dist)
    }

    /// Get-or-compute the distribution of an interned semimodule expression.
    pub fn aggregate_distribution(&mut self, id: AggExprId) -> Result<MonoidDist, EvalError> {
        if let Some(d) = self.cache.get_aggregate(id, self.scope) {
            return Ok(d);
        }
        self.fill_aggregate(id)
    }

    /// As [`fill_semiring`](Self::fill_semiring), for semimodule expressions.
    pub fn fill_aggregate(&mut self, id: AggExprId) -> Result<MonoidDist, EvalError> {
        let dist = self.compute_aggregate(id)?;
        self.cache.insert_aggregate(id, self.scope, &dist);
        Ok(dist)
    }

    fn compute_semiring(&mut self, id: ExprId) -> Result<SemiringDist, EvalError> {
        if self.options.independence {
            let node = self.interner.node(id).clone();
            match node {
                InternedExpr::Add(children) if children.len() > 1 => {
                    if let Some(groups) = self.independent_groups(&children) {
                        let mut acc: Option<SemiringDist> = None;
                        for group in groups {
                            let gid = self.interner.intern_add(group);
                            let d = self.semiring_distribution(gid)?;
                            acc = Some(match acc {
                                None => d,
                                Some(a) => a.convolve(&d, |x, y| x.add(y)),
                            });
                        }
                        return Ok(acc.expect("at least one group"));
                    }
                }
                InternedExpr::Mul(children) if children.len() > 1 => {
                    if let Some(groups) = self.independent_groups(&children) {
                        let mut acc: Option<SemiringDist> = None;
                        for group in groups {
                            let gid = self.interner.intern_mul(group);
                            let d = self.semiring_distribution(gid)?;
                            acc = Some(match acc {
                                None => d,
                                Some(a) => a.convolve(&d, |x, y| x.mul(y)),
                            });
                        }
                        return Ok(acc.expect("at least one group"));
                    }
                }
                _ => {}
            }
        }
        // No independent split: get-or-compile the flattened d-tree, then run the
        // (cheap) arena evaluation.
        let arena = match self.cache.get_semiring_arena(id) {
            Some(a) => a,
            None => {
                let mut compiler =
                    Compiler::with_options(self.vars, self.kind, self.options.clone());
                let tree = compiler.compile_semiring_id(self.interner, id)?;
                let arena = Arc::new(DTreeArena::from_tree(&tree));
                self.cache.insert_semiring_arena(id, self.scope, &arena);
                arena
            }
        };
        Ok(arena.semiring_distribution(self.vars, self.kind)?)
    }

    fn compute_aggregate(&mut self, id: AggExprId) -> Result<MonoidDist, EvalError> {
        let node = self.interner.agg_node(id).clone();
        if self.options.independence && node.terms.len() > 1 {
            let sets: Vec<VarSet> = node
                .terms
                .iter()
                .map(|(c, _)| self.interner.var_set(*c).clone())
                .collect();
            let components = connected_components(&sets);
            if components.len() > 1 {
                let op = node.op;
                return fold_components(
                    op,
                    components.into_iter().map(|component| {
                        let terms = component.iter().map(|&i| node.terms[i]).collect();
                        let gid = self.interner.intern_agg(op, terms);
                        self.aggregate_distribution(gid)
                    }),
                );
            }
        }
        let arena = match self.cache.get_aggregate_arena(id) {
            Some(a) => a,
            None => {
                let mut compiler =
                    Compiler::with_options(self.vars, self.kind, self.options.clone());
                let tree = compiler.compile_semimodule_id(self.interner, id)?;
                let arena = Arc::new(DTreeArena::from_tree(&tree));
                self.cache.insert_aggregate_arena(id, self.scope, &arena);
                arena
            }
        };
        Ok(arena.monoid_distribution(self.vars, self.kind)?)
    }

    /// Split children into groups of pairwise variable-disjoint sub-expressions
    /// (connected components of the co-occurrence graph); `None` when everything is
    /// one component (no split possible).
    fn independent_groups(&self, children: &[ExprId]) -> Option<Vec<Vec<ExprId>>> {
        independent_groups(self.interner, children)
    }
}

/// Fold the distributions of pairwise-independent aggregate components into
/// one. For the additive operators (SUM, COUNT) the accumulator is threaded
/// through the chained dense kernel: it stays in offset-indexed dense form
/// across the *whole* fold instead of round-tripping to sorted-vector form
/// after every component, and materialises exactly once at the end (that final
/// hand-off is the natural end of the chain, not a demotion — same convention
/// as the arena's root hand-off). Bit-identical to the stepwise sparse fold
/// below the FFT crossover; ε-close above it.
fn fold_components<E>(
    op: AggOp,
    dists: impl Iterator<Item = Result<MonoidDist, E>>,
) -> Result<MonoidDist, E> {
    if matches!(op, AggOp::Sum | AggOp::Count) {
        let mut scratch = Vec::new();
        let mut acc: Option<ChainVal> = None;
        for d in dists {
            let d = ChainVal::Sparse(d?);
            acc = Some(match acc {
                None => d,
                Some(a) => convolve_additive_chained(a, d, &mut scratch),
            });
        }
        return Ok(acc.expect("at least one component").into_dist());
    }
    let mut acc: Option<MonoidDist> = None;
    for d in dists {
        let d = d?;
        acc = Some(match acc {
            None => d,
            Some(a) => a.convolve(&d, |x, y| op.combine(x, y)),
        });
    }
    Ok(acc.expect("at least one component"))
}

/// The total mass of non-`0_S` outcomes — the tuple-confidence reading of a
/// semiring distribution.
pub fn confidence_of(dist: &SemiringDist) -> f64 {
    dist.iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

/// A thread-safe compile-artifact store: one [`Interner`] and one
/// [`CompilationCache`] behind mutexes, shareable across worker threads and across
/// engines via `Arc<SharedArtifacts>`.
///
/// The evaluation entry points ([`evaluate_semiring`](Self::evaluate_semiring),
/// [`evaluate_aggregate`](Self::evaluate_aggregate)) replicate the
/// independence-splitting strategy of [`CachedEvaluator`], but take each lock only
/// around the individual intern / lookup / insert steps. The expensive part — d-tree
/// compilation of a component with no further independent split — runs with **no
/// lock held**, so concurrent workers only contend for microseconds at the cache
/// boundary.
///
/// Concurrency semantics: two workers may race to compute the *same* canonical id;
/// both compute the identical distribution (evaluation is a pure function of the
/// interned structure, the variable table and the semiring), and the second insert
/// overwrites the first with an equal value. Results are therefore independent of
/// scheduling; only the hit/miss counters can differ between runs.
///
/// Lock ordering: evaluation paths hold at most one of the two mutexes at a time;
/// only [`clear`](Self::clear) takes both (interner before cache, to reset them
/// atomically), so no lock cycle — and no deadlock — is possible.
#[derive(Debug, Default)]
pub struct SharedArtifacts {
    interner: Mutex<Interner>,
    cache: Mutex<CompilationCache>,
    /// Completed compaction generations (see [`compact`](Self::compact)).
    generation: std::sync::atomic::AtomicU64,
}

/// What one [`SharedArtifacts::compact`] pass retired and retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Interned nodes (semiring + semimodule) before the pass.
    pub interned_before: usize,
    /// Interned nodes after re-interning only the live cache entries.
    pub interned_after: usize,
    /// Approximate cache payload bytes before the pass.
    pub bytes_before: usize,
    /// Approximate cache payload bytes after the pass.
    pub bytes_after: usize,
    /// Cache entries (distributions + arenas) carried over into the new
    /// generation.
    pub entries_kept: usize,
    /// The generation number this pass completed (1 after the first pass).
    pub generation: u64,
}

/// What one [`SharedArtifacts::evict_touching`] pass removed and retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictionStats {
    /// Cache entries (distributions + arenas) whose variable set intersected the
    /// touched set and were therefore dropped.
    pub evicted: usize,
    /// Cache entries retained verbatim (variable set disjoint from the touched
    /// set).
    pub kept: usize,
}

impl SharedArtifacts {
    /// An empty store with the given cache bounds.
    pub fn new(config: CacheConfig) -> Self {
        SharedArtifacts {
            interner: Mutex::new(Interner::new()),
            cache: Mutex::new(CompilationCache::new(config)),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn interner(&self) -> MutexGuard<'_, Interner> {
        self.interner.lock().expect("interner mutex poisoned")
    }

    fn cache(&self) -> MutexGuard<'_, CompilationCache> {
        self.cache.lock().expect("artifact-cache mutex poisoned")
    }

    /// Drop every artifact and reset the arena and counters (used when the
    /// underlying variable distributions change). Affects every sharer of the
    /// `Arc`.
    ///
    /// Arena and cache are swapped under **both** guards: a fresh arena recycles
    /// low ids, so a concurrent worker interning between the two resets could
    /// otherwise match a stale cache entry keyed by a recycled id and read a
    /// different expression's distribution. This is the one place both locks are
    /// held at once (always interner before cache); every other path takes at
    /// most one at a time, so no cycle — and no deadlock — is possible.
    pub fn clear(&self) {
        let mut interner = self.interner();
        let mut cache = self.cache();
        *interner = Interner::new();
        cache.clear();
    }

    /// Completed [`compact`](Self::compact) generations.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Retire the current arena generation: re-intern **only the expressions
    /// still referenced by cache entries** into a fresh [`Interner`] and rebuild
    /// the cache maps under the remapped ids (preserving LRU recency order,
    /// insertion scopes and the behaviour counters).
    ///
    /// The hash-consed arena only ever grows — every expression any query ever
    /// interned stays resident even after its cached artifacts were LRU-evicted.
    /// For a long-lived serving process that is an unbounded leak; compacting
    /// between request batches bounds the arena by what the (already bounded)
    /// cache still references.
    ///
    /// Concurrency contract: like [`clear`](Self::clear), this swaps the arena
    /// under both locks (interner before cache, the one sanctioned lock order),
    /// so the store is never observable half-compacted. Callers must ensure no
    /// evaluation is **in flight across the swap** — an id interned before the
    /// pass must not be evaluated after it (ids are remapped). The `pvc-serve`
    /// scheduler compacts strictly between batches, when no worker holds an id.
    pub fn compact(&self) -> CompactionStats {
        let mut interner = self.interner();
        let mut cache = self.cache();
        let stats_before = (interner.len() + interner.agg_len(), cache.bytes());
        let mut fresh_interner = Interner::new();
        let mut fresh_cache = CompilationCache::new(cache.config);
        fresh_cache.counters = cache.counters;
        let config = cache.config;
        let mut entries_kept = 0usize;
        // Re-insert oldest-first so the new maps reproduce the recency order —
        // the same replay discipline the snapshot codec uses.
        for (key, scope, dist) in cache.semiring.entries_oldest_first() {
            let expr = interner.resolve(ExprId(key));
            let id = fresh_interner.intern(&expr);
            fresh_cache
                .semiring
                .insert(id.0, dist.clone(), dist_bytes(dist), scope, &config);
            entries_kept += 1;
        }
        for (key, scope, dist) in cache.aggregate.entries_oldest_first() {
            let expr = interner.resolve_semimodule(AggExprId(key));
            let id = fresh_interner.intern_semimodule(&expr);
            fresh_cache
                .aggregate
                .insert(id.0, dist.clone(), dist_bytes(dist), scope, &config);
            entries_kept += 1;
        }
        for (key, scope, arena) in cache.sem_arenas.entries_oldest_first() {
            let expr = interner.resolve(ExprId(key));
            let id = fresh_interner.intern(&expr);
            fresh_cache.sem_arenas.insert(
                id.0,
                Arc::clone(arena),
                arena.approx_bytes(),
                scope,
                &config,
            );
            entries_kept += 1;
        }
        for (key, scope, arena) in cache.agg_arenas.entries_oldest_first() {
            let expr = interner.resolve_semimodule(AggExprId(key));
            let id = fresh_interner.intern_semimodule(&expr);
            fresh_cache.agg_arenas.insert(
                id.0,
                Arc::clone(arena),
                arena.approx_bytes(),
                scope,
                &config,
            );
            entries_kept += 1;
        }
        *interner = fresh_interner;
        *cache = fresh_cache;
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        CompactionStats {
            interned_before: stats_before.0,
            interned_after: interner.len() + interner.agg_len(),
            bytes_before: stats_before.1,
            bytes_after: cache.bytes(),
            entries_kept,
            generation,
        }
    }

    /// Selectively drop every cache entry whose expression mentions one of the
    /// `touched` variables, keeping all disjoint entries verbatim — the delta
    /// invalidation primitive behind `Engine::apply_delta` in `pvc-db`.
    ///
    /// Soundness rests on the cache contract: artifacts are pure functions of
    /// (expression structure, variable distributions, semiring). A delta that
    /// changes the distributions of exactly the `touched` variables leaves every
    /// disjoint entry's inputs — and hence its distribution — unchanged, so those
    /// entries stay valid without recomputation. The membership test uses the
    /// var-sets the interner precomputed at intern time; no tree is re-walked.
    ///
    /// The interner itself is left alone (it is append-only; dead nodes are
    /// reclaimed by the next [`compact`](Self::compact)). Both locks are held for
    /// the duration (interner before cache, the sanctioned order), so concurrent
    /// workers never observe a half-evicted store. Behaviour counters are not
    /// reset; these evictions are reported through the returned
    /// [`EvictionStats`], not through [`CacheCounters::evictions`] (which counts
    /// capacity evictions only).
    pub fn evict_touching(&self, touched: &VarSet) -> EvictionStats {
        let interner = self.interner();
        let mut cache = self.cache();
        let mut evicted = 0usize;
        if !touched.is_empty() {
            let keys: Vec<u32> = cache
                .semiring
                .entries_oldest_first()
                .into_iter()
                .map(|(k, _, _)| k)
                .collect();
            for k in keys {
                if !interner.var_set(ExprId(k)).is_disjoint(touched) && cache.semiring.remove(k) {
                    evicted += 1;
                }
            }
            let keys: Vec<u32> = cache
                .sem_arenas
                .entries_oldest_first()
                .into_iter()
                .map(|(k, _, _)| k)
                .collect();
            for k in keys {
                if !interner.var_set(ExprId(k)).is_disjoint(touched) && cache.sem_arenas.remove(k) {
                    evicted += 1;
                }
            }
            let keys: Vec<u32> = cache
                .aggregate
                .entries_oldest_first()
                .into_iter()
                .map(|(k, _, _)| k)
                .collect();
            for k in keys {
                if !interner.agg_var_set(AggExprId(k)).is_disjoint(touched)
                    && cache.aggregate.remove(k)
                {
                    evicted += 1;
                }
            }
            let keys: Vec<u32> = cache
                .agg_arenas
                .entries_oldest_first()
                .into_iter()
                .map(|(k, _, _)| k)
                .collect();
            for k in keys {
                if !interner.agg_var_set(AggExprId(k)).is_disjoint(touched)
                    && cache.agg_arenas.remove(k)
                {
                    evicted += 1;
                }
            }
            crate::obs::core_metrics()
                .cache_eviction
                .add(evicted as u64);
        }
        let kept = cache.semiring.len()
            + cache.aggregate.len()
            + cache.sem_arenas.len()
            + cache.agg_arenas.len();
        EvictionStats { evicted, kept }
    }

    /// Intern a semiring expression into its canonical id.
    pub fn intern(&self, expr: &SemiringExpr) -> ExprId {
        self.interner().intern(expr)
    }

    /// Intern a semimodule expression into its canonical id.
    pub fn intern_semimodule(&self, expr: &SemimoduleExpr) -> AggExprId {
        self.interner().intern_semimodule(expr)
    }

    /// Reduce the cached distribution of `id` under the lock (no clone), promoting
    /// the entry. `None` on a miss.
    pub fn map_semiring<R>(
        &self,
        id: ExprId,
        scope: u64,
        f: impl FnOnce(&SemiringDist) -> R,
    ) -> Option<R> {
        self.cache().map_semiring(id, scope, f)
    }

    /// Insert the distribution of a semiring expression.
    pub fn insert_semiring(&self, id: ExprId, scope: u64, dist: &SemiringDist) {
        self.cache().insert_semiring(id, scope, dist);
    }

    /// Cached distribution of a semimodule expression, if present.
    pub fn get_aggregate(&self, id: AggExprId, scope: u64) -> Option<MonoidDist> {
        self.cache().get_aggregate(id, scope)
    }

    /// Insert the distribution of a semimodule expression.
    pub fn insert_aggregate(&self, id: AggExprId, scope: u64, dist: &MonoidDist) {
        self.cache().insert_aggregate(id, scope, dist);
    }

    /// Get-or-compute the distribution of an interned semiring expression,
    /// memoising every independent sub-d-tree along the way.
    pub fn evaluate_semiring(
        &self,
        id: ExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<SemiringDist, EvalError> {
        let span = crate::obs::span("subtree");
        if let Some(d) = self.cache().get_semiring(id, scope) {
            if let Some(s) = &span {
                s.attr("cache", "hit".into());
            }
            return Ok(d);
        }
        if let Some(s) = &span {
            s.attr("cache", "miss".into());
        }
        self.fill_semiring(id, vars, kind, options, scope)
    }

    /// Compute the distribution of `id` (assuming the caller already observed a
    /// cache miss) and insert it — no second lookup, so the miss is counted once.
    pub fn fill_semiring(
        &self,
        id: ExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<SemiringDist, EvalError> {
        let dist = self.compute_semiring(id, vars, kind, options, scope)?;
        self.insert_semiring(id, scope, &dist);
        Ok(dist)
    }

    /// Get-or-compute the distribution of an interned semimodule expression.
    pub fn evaluate_aggregate(
        &self,
        id: AggExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<MonoidDist, EvalError> {
        let span = crate::obs::span("subtree");
        if let Some(d) = self.get_aggregate(id, scope) {
            if let Some(s) = &span {
                s.attr("cache", "hit".into());
            }
            return Ok(d);
        }
        if let Some(s) = &span {
            s.attr("cache", "miss".into());
        }
        self.fill_aggregate(id, vars, kind, options, scope)
    }

    /// As [`fill_semiring`](Self::fill_semiring), for semimodule expressions.
    pub fn fill_aggregate(
        &self,
        id: AggExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<MonoidDist, EvalError> {
        let dist = self.compute_aggregate(id, vars, kind, options, scope)?;
        self.insert_aggregate(id, scope, &dist);
        Ok(dist)
    }

    fn compute_semiring(
        &self,
        id: ExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<SemiringDist, EvalError> {
        if options.independence {
            // Identify an independent split and intern the group ids under the
            // interner lock; the recursive evaluations below run unlocked.
            let split: Option<(bool, Vec<ExprId>)> = {
                let mut interner = self.interner();
                match interner.node(id).clone() {
                    InternedExpr::Add(children) if children.len() > 1 => {
                        independent_groups(&interner, &children).map(|groups| {
                            let ids = groups.into_iter().map(|g| interner.intern_add(g)).collect();
                            (true, ids)
                        })
                    }
                    InternedExpr::Mul(children) if children.len() > 1 => {
                        independent_groups(&interner, &children).map(|groups| {
                            let ids = groups.into_iter().map(|g| interner.intern_mul(g)).collect();
                            (false, ids)
                        })
                    }
                    _ => None,
                }
            };
            if let Some((is_add, group_ids)) = split {
                let mut acc: Option<SemiringDist> = None;
                for gid in group_ids {
                    let d = self.evaluate_semiring(gid, vars, kind, options, scope)?;
                    acc = Some(match acc {
                        None => d,
                        Some(a) if is_add => a.convolve(&d, |x, y| x.add(y)),
                        Some(a) => a.convolve(&d, |x, y| x.mul(y)),
                    });
                }
                return Ok(acc.expect("at least one group"));
            }
        }
        // No further split: reuse the cached compiled arena if one exists;
        // otherwise materialise the canonical tree under the interner lock, then
        // compile and flatten it with no lock held. The lookup result is bound
        // first so its guard drops before the miss path re-locks the cache.
        let span = crate::obs::span("compile");
        let cached = self.cache().get_semiring_arena(id);
        let arena = match cached {
            Some(a) => {
                if let Some(s) = &span {
                    s.attr("arena", "hit".into());
                }
                a
            }
            None => {
                let expr = self.interner().resolve(id);
                let mut compiler = Compiler::with_options(vars, kind, options.clone());
                let tree = compiler.compile_semiring(&expr)?;
                let arena = Arc::new(DTreeArena::from_tree(&tree));
                self.cache().insert_semiring_arena(id, scope, &arena);
                if let Some(s) = &span {
                    s.attr("arena", "miss".into());
                    s.attr("nodes", arena.len().to_string());
                }
                arena
            }
        };
        drop(span);
        Ok(arena.semiring_distribution(vars, kind)?)
    }

    fn compute_aggregate(
        &self,
        id: AggExprId,
        vars: &VarTable,
        kind: SemiringKind,
        options: &CompileOptions,
        scope: u64,
    ) -> Result<MonoidDist, EvalError> {
        let split: Option<(AggOp, Vec<AggExprId>)> = {
            let mut interner = self.interner();
            let node = interner.agg_node(id).clone();
            if options.independence && node.terms.len() > 1 {
                let sets: Vec<VarSet> = node
                    .terms
                    .iter()
                    .map(|(c, _)| interner.var_set(*c).clone())
                    .collect();
                let components = connected_components(&sets);
                if components.len() > 1 {
                    let ids = components
                        .into_iter()
                        .map(|component| {
                            let terms = component.iter().map(|&i| node.terms[i]).collect();
                            interner.intern_agg(node.op, terms)
                        })
                        .collect();
                    Some((node.op, ids))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((op, group_ids)) = split {
            return fold_components(
                op,
                group_ids
                    .into_iter()
                    .map(|gid| self.evaluate_aggregate(gid, vars, kind, options, scope)),
            );
        }
        let span = crate::obs::span("compile");
        let cached = self.cache().get_aggregate_arena(id);
        let arena = match cached {
            Some(a) => {
                if let Some(s) = &span {
                    s.attr("arena", "hit".into());
                }
                a
            }
            None => {
                let expr = self.interner().resolve_semimodule(id);
                let mut compiler = Compiler::with_options(vars, kind, options.clone());
                let tree = compiler.compile_semimodule(&expr)?;
                let arena = Arc::new(DTreeArena::from_tree(&tree));
                self.cache().insert_aggregate_arena(id, scope, &arena);
                if let Some(s) = &span {
                    s.attr("arena", "miss".into());
                    s.attr("nodes", arena.len().to_string());
                }
                arena
            }
        };
        drop(span);
        Ok(arena.monoid_distribution(vars, kind)?)
    }

    /// Counters since the last clear.
    pub fn counters(&self) -> CacheCounters {
        self.cache().counters()
    }

    /// The configured bounds.
    pub fn config(&self) -> CacheConfig {
        self.cache().config()
    }

    /// Number of cached semiring distributions.
    pub fn semiring_entries(&self) -> usize {
        self.cache().semiring_entries()
    }

    /// Number of cached aggregate distributions.
    pub fn aggregate_entries(&self) -> usize {
        self.cache().aggregate_entries()
    }

    /// Number of cached compiled arenas (semiring + aggregate).
    pub fn arena_entries(&self) -> usize {
        self.cache().arena_entries()
    }

    /// Approximate payload bytes across all artifact maps.
    pub fn bytes(&self) -> usize {
        self.cache().bytes()
    }

    /// Distinct interned nodes (semiring + semimodule) in the arena.
    pub fn interned_nodes(&self) -> usize {
        let interner = self.interner();
        interner.len() + interner.agg_len()
    }

    /// Serialise the whole store into snapshot bytes (see [`crate::persist`]),
    /// returning the bytes together with the exact content counts of the
    /// snapshot. `fingerprint` identifies the database the artifacts were
    /// computed under and `table_fingerprints` is its per-table refinement
    /// (stored so loaders can pinpoint which tables diverged); `extra` is an
    /// opaque caller section stored verbatim (the engine persists its step-I
    /// rewrite cache there). Both locks are held for the duration (interner
    /// before cache, the same order as [`clear`](Self::clear)), so the
    /// snapshot — and the returned counts — are a consistent point-in-time view
    /// even while other sharers keep inserting.
    pub fn snapshot_bytes(
        &self,
        fingerprint: u64,
        table_fingerprints: &[(String, u64)],
        extra: Option<&[u8]>,
    ) -> (Vec<u8>, crate::persist::RestoreStats) {
        let interner = self.interner();
        let cache = self.cache();
        let counts = crate::persist::RestoreStats {
            interned_exprs: interner.len(),
            interned_aggs: interner.agg_len(),
            distributions: cache.semiring_entries() + cache.aggregate_entries(),
            arenas: cache.arena_entries(),
        };
        (
            crate::persist::encode_snapshot(
                &interner,
                &cache,
                fingerprint,
                table_fingerprints,
                extra,
            ),
            counts,
        )
    }

    /// Replay a decoded snapshot into this (possibly warm) store: interned
    /// nodes are merged with id remapping, cache entries are inserted under the
    /// remapped ids honouring this store's LRU bounds. Both locks are held for
    /// the duration, so concurrent workers never observe a half-restored store.
    ///
    /// `expected_fingerprint` must be the digest of the database this store
    /// serves (the same value the saver passed to
    /// [`snapshot_bytes`](Self::snapshot_bytes)); a snapshot recorded against a
    /// different database is refused — cached artifacts are functions of the
    /// probability space they were computed under, and a warm cache serving
    /// another database's numbers would be silently wrong.
    pub fn restore_snapshot(
        &self,
        snapshot: &crate::persist::Snapshot,
        expected_fingerprint: u64,
    ) -> Result<crate::persist::RestoreStats, crate::persist::PersistError> {
        snapshot.verify_fingerprint(expected_fingerprint)?;
        let mut interner = self.interner();
        let mut cache = self.cache();
        snapshot.restore_into(&mut interner, &mut cache)
    }

    /// A fresh store rebuilt from a decoded snapshot, using the **snapshot's**
    /// cache bounds — the warm-restart constructor
    /// (`Engine::with_artifacts_from` in `pvc-db` builds on this; use it
    /// directly to restore one shared store for several multi-tenant engines).
    /// Refuses a snapshot whose fingerprint does not match
    /// `expected_fingerprint` (see [`restore_snapshot`](Self::restore_snapshot)).
    pub fn from_snapshot(
        snapshot: &crate::persist::Snapshot,
        expected_fingerprint: u64,
    ) -> Result<(Self, crate::persist::RestoreStats), crate::persist::PersistError> {
        let store = SharedArtifacts::new(snapshot.config());
        let stats = store.restore_snapshot(snapshot, expected_fingerprint)?;
        Ok((store, stats))
    }
}

/// Split children into groups of pairwise variable-disjoint sub-expressions
/// (connected components of the co-occurrence graph); `None` when everything is one
/// component.
fn independent_groups(interner: &Interner, children: &[ExprId]) -> Option<Vec<Vec<ExprId>>> {
    let sets: Vec<VarSet> = children
        .iter()
        .map(|c| interner.var_set(*c).clone())
        .collect();
    let components = connected_components(&sets);
    if components.len() <= 1 {
        return None;
    }
    Some(
        components
            .into_iter()
            .map(|idxs| idxs.into_iter().map(|i| children[i]).collect())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, MonoidValue::Fin, SemiringValue};
    use pvc_expr::{oracle, SemimoduleExpr, SemiringExpr, Var};

    fn v(x: Var) -> SemiringExpr {
        SemiringExpr::Var(x)
    }

    fn setup() -> (VarTable, Vec<Var>) {
        let mut vt = VarTable::new();
        let vars = (0..6)
            .map(|i| vt.boolean(format!("x{i}"), 0.3 + 0.1 * i as f64))
            .collect();
        (vt, vars)
    }

    #[test]
    fn cached_distribution_matches_oracle_and_hits_on_repeat() {
        let (vt, xs) = setup();
        let expr = v(xs[0]) * (v(xs[1]) + v(xs[2])) + v(xs[3]) * v(xs[4]);
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let id = interner.intern(&expr);
        let dist = {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            eval.semiring_distribution(id).unwrap()
        };
        let oracle_dist = oracle::semiring_dist_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        let misses_after_first = cache.counters().misses;
        assert!(cache.semiring_entries() >= 1);
        // Second evaluation under another scope: pure hit, counted as cross-scope.
        let again = {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                2,
            );
            eval.semiring_distribution(id).unwrap()
        };
        assert!(again.approx_eq(&dist, 1e-12));
        assert_eq!(cache.counters().misses, misses_after_first);
        assert!(cache.counters().hits >= 1);
        assert!(cache.counters().cross_scope_hits >= 1);
    }

    #[test]
    fn independent_components_are_memoised_individually() {
        let (vt, xs) = setup();
        // a·b + c·d : two independent summand groups.
        let left = v(xs[0]) * v(xs[1]);
        let right = v(xs[2]) * v(xs[3]);
        let whole = left.clone() + right.clone();
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let whole_id = interner.intern(&whole);
        {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            eval.semiring_distribution(whole_id).unwrap();
        }
        // The groups were cached on the way: evaluating just `a·b` now hits.
        let hits_before = cache.counters().hits;
        let left_id = interner.intern(&left);
        {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            let d = eval.semiring_distribution(left_id).unwrap();
            let oracle_dist = oracle::semiring_dist_by_enumeration(&left, &vt, SemiringKind::Bool);
            assert!(d.approx_eq(&oracle_dist, 1e-9));
        }
        assert!(cache.counters().hits > hits_before);
    }

    #[test]
    fn aggregate_distribution_matches_oracle() {
        let (vt, xs) = setup();
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (v(xs[0]), Fin(10)),
                (v(xs[1]), Fin(20)),
                (v(xs[0]) * v(xs[2]), Fin(5)),
            ],
        );
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let id = interner.intern_semimodule(&alpha);
        let dist = {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                7,
            );
            eval.aggregate_distribution(id).unwrap()
        };
        let oracle_dist = oracle::semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Bool);
        assert!(dist.approx_eq(&oracle_dist, 1e-9));
        assert!(cache.aggregate_entries() >= 1);
    }

    #[test]
    fn lru_evicts_beyond_entry_bound() {
        let (vt, xs) = setup();
        let mut interner = Interner::new();
        let mut cache = CompilationCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        for &x in xs.iter().take(5) {
            let expr = v(x) + SemiringExpr::Const(SemiringValue::Bool(false));
            let id = interner.intern(&(v(x) * expr.clone() + expr));
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            eval.semiring_distribution(id).unwrap();
        }
        assert!(cache.semiring_entries() <= 2);
        assert!(cache.counters().evictions > 0);
    }

    #[test]
    fn lru_promotion_protects_recent_entries() {
        let mut lru: Lru<u32> = Lru::new();
        let config = CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        };
        lru.insert(1, 10, 1, 0, &config);
        lru.insert(2, 20, 1, 0, &config);
        // Touch 1 so that 2 becomes the LRU victim.
        assert_eq!(lru.get(1).map(|(v, _)| *v), Some(10));
        lru.insert(3, 30, 1, 0, &config);
        assert_eq!(lru.len(), 2);
        assert!(lru.get(2).is_none());
        assert_eq!(lru.get(1).map(|(v, _)| *v), Some(10));
        assert_eq!(lru.get(3).map(|(v, _)| *v), Some(30));
    }

    #[test]
    fn lru_remove_preserves_order_and_bytes() {
        let mut lru: Lru<u32> = Lru::new();
        let config = CacheConfig {
            max_entries: usize::MAX,
            max_bytes: usize::MAX,
        };
        lru.insert(1, 10, 5, 0, &config);
        lru.insert(2, 20, 7, 0, &config);
        lru.insert(3, 30, 11, 0, &config);
        assert!(lru.remove(2));
        assert!(!lru.remove(2), "double remove is a no-op");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.bytes(), 16);
        assert!(lru.get(2).is_none());
        // The survivors keep their values and relative recency (1 is the LRU).
        let keys: Vec<u32> = lru
            .entries_oldest_first()
            .into_iter()
            .map(|(k, _, _)| k)
            .collect();
        assert_eq!(keys, vec![1, 3]);
        // A removed slot is recycled by the next insert.
        lru.insert(4, 40, 1, 0, &config);
        assert_eq!(lru.get(4).map(|(v, _)| *v), Some(40));
        assert_eq!(lru.get(1).map(|(v, _)| *v), Some(10));
    }

    #[test]
    fn evict_touching_keeps_disjoint_entries() {
        let (vt, xs) = setup();
        let shared = SharedArtifacts::default();
        // Two var-disjoint expressions plus an aggregate over the first pair.
        let left = v(xs[0]) * v(xs[1]);
        let right = v(xs[2]) + v(xs[3]);
        let alpha =
            SemimoduleExpr::from_terms(AggOp::Min, vec![(v(xs[2]), Fin(1)), (v(xs[3]), Fin(2))]);
        let lid = shared.intern(&left);
        let rid = shared.intern(&right);
        let aid = shared.intern_semimodule(&alpha);
        shared
            .evaluate_semiring(lid, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
            .unwrap();
        shared
            .evaluate_semiring(rid, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
            .unwrap();
        shared
            .evaluate_aggregate(aid, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
            .unwrap();
        let entries_before = shared.semiring_entries() + shared.aggregate_entries();
        // An empty touched set keeps everything.
        let noop = shared.evict_touching(&VarSet::new());
        assert_eq!(noop.evicted, 0);
        assert_eq!(
            shared.semiring_entries() + shared.aggregate_entries(),
            entries_before
        );
        // Touching x0 drops exactly the entries mentioning x0.
        let stats = shared.evict_touching(&VarSet::singleton(xs[0]));
        assert!(stats.evicted >= 1, "{stats:?}");
        assert!(stats.kept >= 2, "{stats:?}");
        let hits_before = shared.counters().hits;
        // `right` and the aggregate survive: pure hits, no recomputation.
        let d = shared
            .evaluate_semiring(rid, &vt, SemiringKind::Bool, &CompileOptions::default(), 2)
            .unwrap();
        let expected = oracle::semiring_dist_by_enumeration(&right, &vt, SemiringKind::Bool);
        assert!(d.approx_eq(&expected, 1e-9));
        shared
            .evaluate_aggregate(aid, &vt, SemiringKind::Bool, &CompileOptions::default(), 2)
            .unwrap();
        assert!(shared.counters().hits > hits_before);
        // `left` was evicted: recomputing it under a changed distribution for x0
        // yields the new correct value (the stale artifact is gone).
        let mut vt2 = vt.clone();
        vt2.set_dist(xs[0], pvc_prob::make::bernoulli(0.95));
        let d = shared
            .evaluate_semiring(lid, &vt2, SemiringKind::Bool, &CompileOptions::default(), 2)
            .unwrap();
        let expected = oracle::semiring_dist_by_enumeration(&left, &vt2, SemiringKind::Bool);
        assert!(d.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn byte_bound_evicts() {
        let (vt, xs) = setup();
        let mut interner = Interner::new();
        // A bound small enough that only one distribution fits.
        let mut cache = CompilationCache::new(CacheConfig {
            max_entries: usize::MAX,
            max_bytes: 100,
        });
        for i in 0..3 {
            let id = interner.intern(&(v(xs[i]) + v(xs[i + 1])));
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            eval.semiring_distribution(id).unwrap();
        }
        assert!(cache.counters().evictions > 0);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn shared_artifacts_match_cached_evaluator() {
        // The lock-granular shared evaluator must produce the same distributions as
        // the single-threaded CachedEvaluator (both split on independence).
        let (vt, xs) = setup();
        let expr = v(xs[0]) * (v(xs[1]) + v(xs[2])) + v(xs[3]) * v(xs[4]);
        let shared = SharedArtifacts::default();
        let sid = shared.intern(&expr);
        let shared_dist = shared
            .evaluate_semiring(sid, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
            .unwrap();
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let id = interner.intern(&expr);
        let mut eval = CachedEvaluator::new(
            &mut interner,
            &mut cache,
            &vt,
            SemiringKind::Bool,
            CompileOptions::default(),
            1,
        );
        let reference = eval.semiring_distribution(id).unwrap();
        assert!(shared_dist.approx_eq(&reference, 1e-12));
        // Sub-d-tree memoisation happened: the independent halves are cached.
        assert!(shared.semiring_entries() >= 2);
        let alpha =
            SemimoduleExpr::from_terms(AggOp::Min, vec![(v(xs[0]), Fin(10)), (v(xs[1]), Fin(20))]);
        let aid = shared.intern_semimodule(&alpha);
        let agg = shared
            .evaluate_aggregate(aid, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
            .unwrap();
        let oracle_dist = oracle::semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Bool);
        assert!(agg.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn shared_artifacts_are_consistent_under_concurrency() {
        // Many workers evaluating an overlapping family of expressions must agree
        // with the oracle on every value; racing inserts only ever write equal
        // distributions.
        let (vt, xs) = setup();
        let exprs: Vec<SemiringExpr> = (0..12)
            .map(|i| {
                let a = v(xs[i % 6]);
                let b = v(xs[(i + 1) % 6]);
                let c = v(xs[(i + 2) % 6]);
                a * (b + c)
            })
            .collect();
        let shared = SharedArtifacts::default();
        let ids: Vec<ExprId> = exprs.iter().map(|e| shared.intern(e)).collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let shared = &shared;
                let ids = &ids;
                let exprs = &exprs;
                let vt = &vt;
                scope.spawn(move || {
                    for (i, id) in ids.iter().enumerate() {
                        let d = shared
                            .evaluate_semiring(
                                *id,
                                vt,
                                SemiringKind::Bool,
                                &CompileOptions::default(),
                                worker,
                            )
                            .unwrap();
                        let expected =
                            oracle::semiring_dist_by_enumeration(&exprs[i], vt, SemiringKind::Bool);
                        assert!(d.approx_eq(&expected, 1e-9));
                    }
                });
            }
        });
        let counters = shared.counters();
        assert!(counters.hits + counters.misses >= 48);
        assert!(shared.interned_nodes() > 0);
        shared.clear();
        assert_eq!(shared.semiring_entries(), 0);
        assert_eq!(shared.interned_nodes(), 0);
    }

    #[test]
    fn compaction_drops_dead_interner_nodes_and_preserves_results() {
        let (vt, xs) = setup();
        let shared = SharedArtifacts::new(CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
        });
        // A churny workload: many distinct expressions, most of whose cache
        // entries the tiny LRU bound evicts — but whose interned nodes stay.
        let mut exprs = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    exprs.push(v(xs[i]) * (v(xs[j]) + v(xs[(j + 1) % 6])));
                }
            }
        }
        for e in &exprs {
            let id = shared.intern(e);
            shared
                .evaluate_semiring(id, &vt, SemiringKind::Bool, &CompileOptions::default(), 1)
                .unwrap();
        }
        let nodes_before = shared.interned_nodes();
        let counters_before = shared.counters();
        let stats = shared.compact();
        assert_eq!(stats.generation, 1);
        assert_eq!(shared.generation(), 1);
        assert!(
            stats.interned_after < stats.interned_before,
            "compaction should retire dead nodes: {stats:?}"
        );
        assert_eq!(stats.interned_before, nodes_before);
        // Counters survive the generation swap.
        assert_eq!(shared.counters(), counters_before);
        // Retained entries still serve — and still match the oracle — after the
        // id remap (a fresh intern of the same expression maps onto the new id).
        let mut warm_hits = 0;
        for e in &exprs {
            let id = shared.intern(e);
            let d = shared
                .evaluate_semiring(id, &vt, SemiringKind::Bool, &CompileOptions::default(), 2)
                .unwrap();
            let expected = oracle::semiring_dist_by_enumeration(e, &vt, SemiringKind::Bool);
            assert!(d.approx_eq(&expected, 1e-9));
            warm_hits += 1;
        }
        assert!(warm_hits > 0);
        // Repeated compaction under a steady live set converges: the arena stays
        // bounded instead of growing with history.
        let after_first = shared.compact().interned_after;
        let after_second = shared.compact().interned_after;
        assert!(after_second <= after_first);
        assert_eq!(shared.generation(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let (vt, xs) = setup();
        let mut interner = Interner::new();
        let mut cache = CompilationCache::default();
        let id = interner.intern(&(v(xs[0]) + v(xs[1])));
        {
            let mut eval = CachedEvaluator::new(
                &mut interner,
                &mut cache,
                &vt,
                SemiringKind::Bool,
                CompileOptions::default(),
                1,
            );
            eval.semiring_distribution(id).unwrap();
        }
        assert!(cache.semiring_entries() > 0);
        cache.clear();
        assert_eq!(cache.semiring_entries(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.counters(), CacheCounters::default());
    }
}
