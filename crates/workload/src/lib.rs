//! # pvc-workload
//!
//! The random-expression workload of the paper's §7.1: conditional expressions of the
//! two forms of Eq. (11),
//!
//! ```text
//! [ Σ_AGGL Φ_i ⊗ v_i   θ   Σ_AGGR Ψ_j ⊗ w_j ]      (two-sided, R > 0)
//! [ Σ_AGGL Φ_i ⊗ v_i   θ   c ]                      (one-sided, R = 0)
//! ```
//!
//! where each `Φ_i` is a small positive DNF (the provenance of one tuple of a
//! conjunctive query under projection): a sum of `#cl` clauses, each a product of `#l`
//! Boolean random variables drawn from a pool of `#v` distinct variables. Values `v_i`
//! and `w_j` are drawn uniformly from `[0, maxv]`.
//!
//! The generator is deterministic given a seed, so every experiment run regenerates
//! the same expressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pvc_algebra::{AggOp, CmpOp, MonoidValue};
use pvc_expr::{SemimoduleExpr, SemiringExpr, Var, VarTable};
use pvc_prob::SeededRng;

/// Parameters of the synthetic expression workload (the knobs of Experiments A–E).
#[derive(Debug, Clone, PartialEq)]
pub struct ExprGenParams {
    /// Number of semimodule terms on the left-hand side of θ (`L`).
    pub left_terms: usize,
    /// Number of semimodule terms on the right-hand side of θ (`R`); 0 selects the
    /// one-sided form compared against the constant `c`.
    pub right_terms: usize,
    /// Aggregation monoid of the left side (`AGG_L`).
    pub agg_left: AggOp,
    /// Aggregation monoid of the right side (`AGG_R`), used when `right_terms > 0`.
    pub agg_right: AggOp,
    /// Number of distinct Boolean random variables (`#v`).
    pub num_vars: usize,
    /// Clauses per term (`#cl`).
    pub clauses_per_term: usize,
    /// Positive literals per clause (`#l`).
    pub literals_per_clause: usize,
    /// Aggregated values are drawn uniformly from `[0, maxv]`.
    pub max_value: i64,
    /// The comparison operator θ.
    pub theta: CmpOp,
    /// The constant `c` of the one-sided form.
    pub constant: i64,
    /// Marginal probability of each Boolean variable being true.
    pub var_probability: f64,
}

impl Default for ExprGenParams {
    /// The base configuration of Experiment A: `#v = 25`, `L = 200`, `R = 0`,
    /// `#cl = 3`, `#l = 3`, `maxv = 200`.
    fn default() -> Self {
        ExprGenParams {
            left_terms: 200,
            right_terms: 0,
            agg_left: AggOp::Min,
            agg_right: AggOp::Min,
            num_vars: 25,
            clauses_per_term: 3,
            literals_per_clause: 3,
            max_value: 200,
            theta: CmpOp::Le,
            constant: 100,
            var_probability: 0.5,
        }
    }
}

/// A generated workload instance: the variable table and the conditional expression.
#[derive(Debug, Clone)]
pub struct GeneratedExpr {
    /// The random variables with their distributions.
    pub vars: VarTable,
    /// The full conditional expression `[lhs θ rhs]` of Eq. (11).
    pub condition: SemiringExpr,
    /// The left-hand semimodule expression.
    pub lhs: SemimoduleExpr,
    /// The right-hand semimodule expression (a constant when `right_terms = 0`).
    pub rhs: SemimoduleExpr,
}

/// The deterministic random-expression generator.
#[derive(Debug)]
pub struct ExprGenerator {
    params: ExprGenParams,
    rng: SeededRng,
}

impl ExprGenerator {
    /// Create a generator with the given parameters and seed.
    pub fn new(params: ExprGenParams, seed: u64) -> Self {
        ExprGenerator {
            params,
            rng: SeededRng::seed_from_u64(seed),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &ExprGenParams {
        &self.params
    }

    /// Generate one workload instance.
    pub fn generate(&mut self) -> GeneratedExpr {
        let mut vars = VarTable::new();
        let pool: Vec<Var> = (0..self.params.num_vars)
            .map(|i| vars.boolean(format!("v{i}"), self.params.var_probability))
            .collect();

        let lhs = self.generate_side(&pool, self.params.agg_left, self.params.left_terms);
        let rhs = if self.params.right_terms == 0 {
            SemimoduleExpr::constant(self.params.agg_left, MonoidValue::Fin(self.params.constant))
        } else {
            self.generate_side(&pool, self.params.agg_right, self.params.right_terms)
        };
        let condition = SemiringExpr::cmp_mm(self.params.theta, lhs.clone(), rhs.clone());
        GeneratedExpr {
            vars,
            condition,
            lhs,
            rhs,
        }
    }

    /// Generate one side of the comparison: `terms` semimodule terms `Φ_i ⊗ v_i`.
    fn generate_side(&mut self, pool: &[Var], op: AggOp, terms: usize) -> SemimoduleExpr {
        let mut expr = SemimoduleExpr::zero(op);
        for _ in 0..terms {
            let coeff = self.generate_term_annotation(pool);
            let value = if op.is_count() {
                MonoidValue::Fin(1)
            } else {
                MonoidValue::Fin(self.rng.gen_range(0..=self.params.max_value))
            };
            expr.push(coeff, value);
        }
        expr
    }

    /// One term's annotation `Φ_i`: a sum of `#cl` clauses, each a product of `#l`
    /// distinct variables drawn from the pool.
    fn generate_term_annotation(&mut self, pool: &[Var]) -> SemiringExpr {
        let clauses: Vec<SemiringExpr> = (0..self.params.clauses_per_term)
            .map(|_| {
                let literals: Vec<SemiringExpr> = self
                    .sample_distinct(pool, self.params.literals_per_clause)
                    .into_iter()
                    .map(SemiringExpr::Var)
                    .collect();
                SemiringExpr::product(literals)
            })
            .collect();
        SemiringExpr::sum(clauses)
    }

    /// Sample `n` distinct variables from the pool (or all of them if `n ≥ |pool|`).
    fn sample_distinct(&mut self, pool: &[Var], n: usize) -> Vec<Var> {
        let n = n.min(pool.len());
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        while chosen.len() < n {
            let idx = self.rng.gen_range(0..pool.len());
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        chosen.into_iter().map(|i| pool[i]).collect()
    }
}

/// Convenience: build a generated expression for a constant `c` on the right and the
/// base parameters of Experiment A, overriding the aggregation and comparison.
pub fn experiment_a_instance(
    agg: AggOp,
    theta: CmpOp,
    constant: i64,
    terms: usize,
    seed: u64,
) -> GeneratedExpr {
    let params = ExprGenParams {
        agg_left: agg,
        theta,
        constant,
        left_terms: terms,
        ..ExprGenParams::default()
    };
    ExprGenerator::new(params, seed).generate()
}

/// Number of distinct variables actually used by a generated expression — a sanity
/// statistic used by tests and the harness output.
pub fn distinct_vars_used(expr: &GeneratedExpr) -> usize {
    expr.condition.vars().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{SemiringKind, SemiringValue};
    use pvc_expr::oracle;

    #[test]
    fn generation_is_deterministic() {
        let params = ExprGenParams {
            left_terms: 10,
            num_vars: 8,
            ..ExprGenParams::default()
        };
        let a = ExprGenerator::new(params.clone(), 42).generate();
        let b = ExprGenerator::new(params, 42).generate();
        assert_eq!(a.condition, b.condition);
        assert_eq!(a.lhs, b.lhs);
    }

    #[test]
    fn different_seeds_differ() {
        let params = ExprGenParams {
            left_terms: 10,
            num_vars: 8,
            ..ExprGenParams::default()
        };
        let a = ExprGenerator::new(params.clone(), 1).generate();
        let b = ExprGenerator::new(params, 2).generate();
        assert_ne!(a.condition, b.condition);
    }

    #[test]
    fn shapes_match_parameters() {
        let params = ExprGenParams {
            left_terms: 7,
            right_terms: 4,
            num_vars: 10,
            clauses_per_term: 2,
            literals_per_clause: 3,
            agg_left: AggOp::Max,
            agg_right: AggOp::Sum,
            ..ExprGenParams::default()
        };
        let g = ExprGenerator::new(params, 7).generate();
        assert_eq!(g.lhs.num_terms(), 7);
        assert_eq!(g.rhs.num_terms(), 4);
        assert_eq!(g.lhs.op, AggOp::Max);
        assert_eq!(g.rhs.op, AggOp::Sum);
        assert_eq!(g.vars.len(), 10);
        assert!(distinct_vars_used(&g) <= 10);
        // Every term coefficient has exactly 2 clauses of at most 3 literals each.
        for t in &g.lhs.terms {
            match &t.coeff {
                SemiringExpr::Add(clauses) => {
                    assert_eq!(clauses.len(), 2);
                    for c in clauses {
                        assert!(c.vars().len() <= 3);
                    }
                }
                // A degenerate single clause collapses the sum.
                other => assert!(other.vars().len() <= 3),
            }
        }
    }

    #[test]
    fn count_terms_use_unit_values() {
        let params = ExprGenParams {
            left_terms: 5,
            agg_left: AggOp::Count,
            num_vars: 6,
            ..ExprGenParams::default()
        };
        let g = ExprGenerator::new(params, 3).generate();
        assert!(g.lhs.terms.iter().all(|t| t.value == MonoidValue::Fin(1)));
    }

    #[test]
    fn one_sided_form_uses_constant() {
        let params = ExprGenParams {
            left_terms: 3,
            right_terms: 0,
            constant: 77,
            num_vars: 6,
            ..ExprGenParams::default()
        };
        let g = ExprGenerator::new(params, 9).generate();
        assert_eq!(g.rhs.as_const(), Some(MonoidValue::Fin(77)));
    }

    #[test]
    fn generated_expressions_are_compilable_and_correct() {
        // Small instances: check the d-tree probability equals brute-force enumeration.
        for (agg, theta) in [
            (AggOp::Min, CmpOp::Le),
            (AggOp::Max, CmpOp::Ge),
            (AggOp::Count, CmpOp::Eq),
            (AggOp::Sum, CmpOp::Le),
        ] {
            let params = ExprGenParams {
                left_terms: 4,
                num_vars: 6,
                clauses_per_term: 2,
                literals_per_clause: 2,
                max_value: 10,
                constant: 8,
                agg_left: agg,
                theta,
                ..ExprGenParams::default()
            };
            let g = ExprGenerator::new(params, 11).generate();
            let p = pvc_core::confidence(&g.condition, &g.vars, SemiringKind::Bool);
            let expected =
                oracle::confidence_by_enumeration(&g.condition, &g.vars, SemiringKind::Bool);
            assert!(
                (p - expected).abs() < 1e-9,
                "{agg:?} {theta:?}: {p} vs {expected}"
            );
        }
    }

    #[test]
    fn var_probability_is_respected() {
        let params = ExprGenParams {
            num_vars: 4,
            left_terms: 2,
            var_probability: 0.2,
            ..ExprGenParams::default()
        };
        let g = ExprGenerator::new(params, 5).generate();
        for v in g.vars.iter() {
            assert!((g.vars.dist(v).prob(&SemiringValue::Bool(true)) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn experiment_a_helper() {
        let g = experiment_a_instance(AggOp::Min, CmpOp::Le, 50, 12, 1);
        assert_eq!(g.lhs.num_terms(), 12);
        assert_eq!(g.rhs.as_const(), Some(MonoidValue::Fin(50)));
    }
}
