//! Uncertain sensor readings: a monitoring scenario in the spirit of the paper's
//! motivation (data acquired through measurements is inherently uncertain).
//!
//! A network of temperature sensors reports readings that may be spurious (each
//! reading is only present with some probability). We ask OLAP-style questions:
//! the exact distribution of the number of overheating readings per room, the
//! probability that a room's maximum temperature exceeds a threshold, and the
//! expected maximum. All queries go through `Engine::prepare(..)?.execute(..)?`.
//!
//! Run with: `cargo run --example sensor_network`

use pvc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_table("readings", Schema::new(["room", "sensor", "temperature"]));
    {
        let (readings, vars) = db.table_and_vars_mut("readings")?;
        // (room, sensor, temperature °C, probability that the reading is genuine)
        let data = [
            ("server-room", 1, 71, 0.95),
            ("server-room", 2, 68, 0.90),
            ("server-room", 3, 93, 0.30), // probably a glitch
            ("server-room", 4, 77, 0.85),
            ("lab", 5, 21, 0.99),
            ("lab", 6, 24, 0.97),
            ("lab", 7, 55, 0.10), // almost surely a glitch
            ("office", 8, 19, 0.99),
            ("office", 9, 23, 0.95),
        ];
        for (room, sensor, temp, p) in data {
            readings.push_independent(
                vec![room.into(), (sensor as i64).into(), (temp as i64).into()],
                p,
                vars,
            );
        }
    }
    let engine = Engine::new(db);

    // How many readings above 65 °C does each room have, and how hot does it get?
    let hot = Query::table("readings")
        .select(Predicate::ColCmpConst(
            "temperature".into(),
            CmpOp::Ge,
            Value::Int(65),
        ))
        .group_agg(
            ["room"],
            vec![
                AggSpec::count("hot_readings"),
                AggSpec::new(AggOp::Max, "temperature", "max_temp"),
            ],
        );
    let prepared = engine.prepare(&hot)?;
    println!("{}", prepared.plan());
    let result = prepared.execute(&EvalOptions::default())?;
    for tuple in &result.tuples {
        println!("room {}", tuple.values[0]);
        println!(
            "  P[at least one genuine hot reading] = {:.4}",
            tuple.confidence
        );
        let count = &tuple.aggregate_distributions["hot_readings"];
        println!("  distribution of #hot readings: {count}");
        let max = &tuple.aggregate_distributions["max_temp"];
        println!("  distribution of max temperature: {max}");
        if let Some(moments) = pvc_suite::prob::moments(max) {
            println!(
                "  expected max temperature (given any hot reading): {:.2} °C (σ = {:.2})",
                moments.mean,
                moments.variance.sqrt()
            );
        }
        println!();
    }

    // An alarm condition as a standalone expression: the probability that the
    // server room has at least two genuine readings above 65 °C.
    let table = try_evaluate(engine.database(), &hot)?;
    let server_room = table
        .iter()
        .find(|t| t.values[0].as_str() == Some("server-room"))
        .expect("server-room group");
    let count_expr = server_room.values[1].as_agg().unwrap().clone();
    let alarm = SemiringExpr::cmp_mm(
        CmpOp::Ge,
        count_expr,
        SemimoduleExpr::constant(AggOp::Count, MonoidValue::Fin(2)),
    );
    let p = confidence(&alarm, &engine.database().vars, engine.database().kind);
    println!("P[server room has ≥ 2 genuine readings above 65 °C] = {p:.4}");
    Ok(())
}
