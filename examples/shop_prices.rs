//! The paper's running example (Figure 1): suppliers, products and offers with
//! uncertain presence, the positive query Q1 and the aggregate query Q2 ("shops whose
//! maximal price is at most 50"), evaluated exactly through the `Engine`.
//!
//! Run with: `cargo run --example shop_prices`

use pvc_suite::prelude::*;

fn build_figure1_database() -> Result<Database, Error> {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S")?;
        for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")] {
            s.push_independent(vec![(sid as i64).into(), shop.into()], 0.5, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS")?;
        for (sid, pid, price) in [
            (1, 1, 10),
            (1, 2, 50),
            (2, 1, 11),
            (2, 2, 60),
            (3, 3, 15),
            (3, 4, 40),
            (4, 1, 15),
            (4, 3, 60),
            (5, 1, 10),
        ] {
            ps.push_independent(
                vec![
                    (sid as i64).into(),
                    (pid as i64).into(),
                    (price as i64).into(),
                ],
                0.5,
                vars,
            );
        }
    }
    {
        let (p1, vars) = db.table_and_vars_mut("P1")?;
        for (pid, weight) in [(1, 4), (2, 8), (3, 7), (4, 6)] {
            p1.push_independent(vec![(pid as i64).into(), (weight as i64).into()], 0.5, vars);
        }
    }
    {
        let (p2, vars) = db.table_and_vars_mut("P2")?;
        p2.push_independent(vec![1i64.into(), 5i64.into()], 0.5, vars);
    }
    Ok(db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(build_figure1_database()?);

    // Q1 = π_{shop, price}[ S ⋈ PS ⋈ (P1 ∪ P2) ]  (Figure 1d).
    let products = Query::table("P1")
        .union(Query::table("P2"))
        .rename(&[("pid", "p_pid"), ("weight", "p_weight")]);
    let q1 = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(products, &[("ps_pid", "p_pid")])
        .project(["shop", "price"]);

    println!("Q1 — prices of products available in shops");
    let q1_table = try_evaluate(engine.database(), &q1)?;
    println!("{q1_table}");
    let prepared_q1 = engine.prepare(&q1)?;
    let q1_result = prepared_q1.execute(&EvalOptions::confidence_only())?;
    for tuple in &q1_result.tuples {
        println!(
            "  P[{} sells at {}] = {:.4}",
            tuple.values[0], tuple.values[1], tuple.confidence
        );
    }

    // Q2 = π_shop σ_{P ≤ 50} $_{shop; P ← MAX(price)}[Q1]  (Figure 1e).
    let q2 = q1
        .clone()
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
        .project(["shop"]);
    println!("\nQ2 — shops whose maximal available price is at most 50");
    let prepared_q2 = engine.prepare(&q2)?;
    println!("{}", prepared_q2.plan());
    let result = prepared_q2.execute(&EvalOptions::default())?;
    for tuple in &result.tuples {
        println!(
            "  P[{} qualifies] = {:.4}",
            tuple.values[0], tuple.confidence
        );
    }

    // The MAX-price distribution per shop, before the ≤ 50 filter.
    let per_shop = q1.group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]);
    let result = engine
        .prepare(&per_shop)?
        .execute(&EvalOptions::default())?;
    println!("\nDistribution of the maximal price per shop (−∞ = no product on offer):");
    for tuple in &result.tuples {
        println!(
            "  {}: {}",
            tuple.values[0], tuple.aggregate_distributions["P"]
        );
    }
    Ok(())
}
