//! Quickstart: the `Engine` / prepared-query flow in five minutes.
//!
//! The engine is the front door of the whole suite:
//!
//! 1. build a probabilistic database (`Database`) of tuple-independent tables;
//! 2. hand it to `Engine::new`, which owns it together with a cache of compile
//!    artifacts;
//! 3. `Engine::prepare` validates a query *once*, computes its output schema and
//!    classifies it against the paper's §6 tractability classes — the result is an
//!    inspectable `Plan` (no panics: malformed queries come back as
//!    `Err(Error::Validation(..))`);
//! 4. `PreparedQuery::execute` runs the two evaluation steps (the `⟦·⟧` rewriting
//!    and d-tree-based probability computation) under explicit `EvalOptions`,
//!    reusing cached artifacts on repeated execution;
//! 5. `EvalOptions::with_threads` fans the per-tuple work out over worker threads,
//!    and `PreparedQuery::execute_streaming` yields tuples as they are computed —
//!    results are bit-identical either way.
//!
//! Run with: `cargo run --example quickstart`

use pvc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A probabilistic database of uncertain product offers. Every tuple is present
    //    with the given probability, independently of the others (a tuple-independent
    //    pvc-table).
    let mut db = Database::new();
    db.create_table("offers", Schema::new(["shop", "product", "price"]));
    {
        let (offers, vars) = db.table_and_vars_mut("offers")?;
        for (shop, product, price, p) in [
            ("M&S", "shirt", 10, 0.9),
            ("M&S", "coat", 50, 0.6),
            ("Gap", "shirt", 12, 0.8),
            ("Gap", "coat", 45, 0.7),
            ("Gap", "hat", 60, 0.3),
        ] {
            offers.push_independent(
                vec![shop.into(), product.into(), (price as i64).into()],
                p,
                vars,
            );
        }
    }

    // 2. The engine owns the database; queries are prepared against it.
    let engine = Engine::new(db);

    // 3. An aggregate query in the language Q: the cheapest price and the number of
    //    offers per shop. `prepare` validates it and reports the evaluation strategy.
    let query = Query::table("offers").group_agg(
        ["shop"],
        vec![
            AggSpec::new(AggOp::Min, "price", "cheapest"),
            AggSpec::count("offer_count"),
        ],
    );
    let prepared = engine.prepare(&query)?;
    println!("{}", prepared.plan());

    // 4. Execute: step I builds tuples with semiring/semimodule expressions, step II
    //    compiles them into decomposition trees and computes exact distributions.
    let result = prepared.execute(&EvalOptions::default())?;
    println!("columns: {:?}", result.columns);
    for tuple in &result.tuples {
        println!(
            "\nshop = {}   P[group non-empty] = {:.4}",
            tuple.values[0], tuple.confidence
        );
        for (column, dist) in &tuple.aggregate_distributions {
            println!("  {column}: {dist}");
        }
    }

    // 5. Result shaping: when only confidences are needed, skip the (more expensive)
    //    aggregate-distribution compilation. The rewrite of step I is reused from the
    //    engine's cache.
    let slim = prepared.execute(&EvalOptions::confidence_only())?;
    println!(
        "\nconfidence-only re-run (cached rewrite): {} tuples, {:?} rewrite time",
        slim.tuples.len(),
        slim.rewrite_time
    );

    // 6. Parallel + streaming execution: `threads` fans the per-tuple compilation
    //    out over workers (0 = one per core), and `execute_streaming` returns an
    //    iterator that yields each tuple in deterministic order as soon as it is
    //    ready — consume a prefix and drop the stream to cancel the rest. The
    //    confidences are bit-identical to the sequential run.
    let stream = prepared.execute_streaming(&EvalOptions::confidence_only().with_threads(0))?;
    println!(
        "\nstreaming on {} worker(s), {} tuple(s):",
        stream.threads(),
        stream.total_tuples()
    );
    for (i, tuple) in stream.enumerate() {
        let tuple = tuple?;
        println!("  tuple {i}: P = {:.4}", tuple.confidence);
    }

    // 7. The same machinery is available at expression level: the probability that
    //    the cheapest M&S offer is at most 20.
    let table = try_evaluate(engine.database(), &query)?;
    let cheapest = table.tuples[1].values[1]
        .as_agg()
        .expect("aggregation column");
    let condition = SemiringExpr::cmp_mm(
        CmpOp::Le,
        cheapest.clone(),
        SemimoduleExpr::constant(AggOp::Min, MonoidValue::Fin(20)),
    );
    let p = confidence(&condition, &engine.database().vars, engine.database().kind);
    println!("\nP[min price at M&S ≤ 20] = {p:.4}");

    // 8. Invalid queries are errors, not panics.
    let invalid = Query::table("offers").project(["no_such_column"]);
    match engine.prepare(&invalid) {
        Err(Error::Validation(e)) => println!("rejected as expected: {e}"),
        other => panic!("expected a validation error, got {other:?}"),
    }
    Ok(())
}
