//! Quickstart: build a small probabilistic database, run an aggregate query, and read
//! off exact tuple probabilities and aggregate-value distributions.
//!
//! Run with: `cargo run --example quickstart`

use pvc_suite::prelude::*;

fn main() {
    // 1. A probabilistic database of uncertain product offers. Every tuple is present
    //    with the given probability, independently of the others (a tuple-independent
    //    pvc-table).
    let mut db = Database::new();
    db.create_table("offers", Schema::new(["shop", "product", "price"]));
    {
        let (offers, vars) = db.table_and_vars_mut("offers");
        for (shop, product, price, p) in [
            ("M&S", "shirt", 10, 0.9),
            ("M&S", "coat", 50, 0.6),
            ("Gap", "shirt", 12, 0.8),
            ("Gap", "coat", 45, 0.7),
            ("Gap", "hat", 60, 0.3),
        ] {
            offers.push_independent(
                vec![shop.into(), product.into(), (price as i64).into()],
                p,
                vars,
            );
        }
    }

    // 2. An aggregate query in the language Q: the cheapest price and the number of
    //    offers per shop.
    let query = Query::table("offers").group_agg(
        ["shop"],
        vec![
            AggSpec::new(AggOp::Min, "price", "cheapest"),
            AggSpec::count("offer_count"),
        ],
    );
    println!("query class: {:?}", classify(&query, &db));

    // 3. Evaluate: step I builds tuples with semiring/semimodule expressions, step II
    //    compiles them into decomposition trees and computes exact distributions.
    let result = evaluate_with_probabilities(&db, &query);
    println!("columns: {:?}", result.columns);
    for tuple in &result.tuples {
        println!(
            "\nshop = {}   P[group non-empty] = {:.4}",
            tuple.values[0], tuple.confidence
        );
        for (column, dist) in &tuple.aggregate_distributions {
            println!("  {column}: {dist}");
        }
    }

    // 4. The same machinery is available at expression level: the probability that
    //    the cheapest M&S offer is at most 20.
    let table = evaluate(&db, &query);
    let cheapest = table.tuples[1].values[1].as_agg().expect("aggregation column");
    let condition = SemiringExpr::cmp_mm(
        CmpOp::Le,
        cheapest.clone(),
        SemimoduleExpr::constant(AggOp::Min, MonoidValue::Fin(20)),
    );
    let p = confidence(&condition, &db.vars, db.kind);
    println!("\nP[min price at M&S ≤ 20] = {p:.4}");
}
