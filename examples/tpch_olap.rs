//! Decision support over uncertain data: the paper's TPC-H experiment in miniature.
//!
//! Generates a tuple-independent TPC-H-like database, runs the paper's two queries
//! (Q1: counts of billed/shipped/returned business, Q2: minimum-cost suppliers)
//! through the `Engine` and reports exact tuple probabilities, separating the two
//! evaluation phases the paper measures: expression construction (⟦·⟧) and
//! probability computation (P(·)).
//!
//! Run with: `cargo run --release --example tpch_olap`

use pvc_suite::prelude::*;
use pvc_suite::tpch::{generate, q1, q2, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TpchConfig {
        scale_factor: 0.25,
        ..TpchConfig::default()
    };
    let db = generate(&config);
    println!(
        "generated TPC-H-like database at scale factor {}: {} tuples, {} random variables\n",
        config.scale_factor,
        db.total_tuples(),
        db.vars.len()
    );
    let engine = Engine::new(db);

    // Q1: COUNT of line items per (returnflag, linestatus), shipped before a cutoff.
    let q1 = q1(1_800);
    let prepared = engine.prepare(&q1)?;
    println!("TPC-H Q1 (COUNT per return flag / line status)");
    println!("{}", prepared.plan());
    let result = prepared.execute(&EvalOptions::default())?;
    println!(
        "  ⟦·⟧ took {:?}, P(·) took {:?}",
        result.rewrite_time, result.probability_time
    );
    for tuple in &result.tuples {
        let count = &tuple.aggregate_distributions["order_count"];
        let expected = pvc_suite::prob::expectation(count).unwrap_or(0.0);
        println!(
            "  flag={} status={}  P[group non-empty]={:.4}  E[count]={:.2}  support size={}",
            tuple.values[0],
            tuple.values[1],
            tuple.confidence,
            expected,
            count.support_size()
        );
    }

    // Q2: suppliers offering a qualifying part at its minimum supply cost. Only the
    // confidences are needed here, so skip the aggregate distributions.
    let q2 = q2("ASIA", 25);
    println!("\nTPC-H Q2 (minimum-cost suppliers in ASIA)");
    let prepared = engine.prepare(&q2)?;
    let result = prepared.execute(&EvalOptions::confidence_only())?;
    println!(
        "  ⟦·⟧ took {:?}, P(·) took {:?}, {} candidate answers",
        result.rewrite_time,
        result.probability_time,
        result.tuples.len()
    );
    let mut best: Vec<&ProbTuple> = result.tuples.iter().collect();
    best.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    for tuple in best.iter().take(5) {
        println!(
            "  supplier {} offers part {} at cost {}: probability {:.4}",
            tuple.values[0], tuple.values[1], tuple.values[2], tuple.confidence
        );
    }
    Ok(())
}
