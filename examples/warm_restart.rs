//! Warm restart: persist compile artifacts to disk, "restart", and serve the
//! first query warm.
//!
//! The engine's speed story rests on reusing compiled artifacts — interned
//! expressions, memoised distributions, flattened d-tree arenas, cached step-I
//! rewrites. This example closes the loop across a process restart:
//!
//! 1. build a database and run a workload cold (every d-tree compiled);
//! 2. run it again warm (everything served from the in-process caches);
//! 3. `Engine::save_artifacts` — snapshot the caches into one versioned,
//!    checksummed file;
//! 4. "restart": rebuild the database from scratch (same deterministic loading
//!    code) and bring up a fresh engine with `Engine::with_artifacts_from`;
//! 5. the restarted engine's *first* query runs at warm speed — zero misses,
//!    zero arena rebuilds, bit-identical results.
//!
//! A snapshot is refused (with a typed `Error::Snapshot`) when it is corrupted,
//! written by another format version, or recorded against a database that no
//! longer matches in any table — a warm cache that silently served wrong
//! numbers would be far worse than a cold start. When only *some* tables
//! diverged, the per-table fingerprint vector lets the loader restore
//! partially: artifacts over the unchanged tables stay warm, the rest are
//! dropped and recomputed on demand.
//!
//! Run with: `cargo run --release --example warm_restart`

use pvc_suite::prelude::*;
use std::time::Instant;

/// Deterministic loading code: every "process" builds the same database, so the
/// snapshot's database fingerprint matches after the restart.
fn build_database() -> Result<Database, Error> {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S")?;
        for i in 0..24i64 {
            s.push_independent(vec![i.into(), format!("shop{i}").into()], 0.6, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS")?;
        for i in 0..24i64 {
            for j in 0..5i64 {
                let pid = (i * 31 + j * 7) % 60;
                let price = 10 + (i * 13 + j * 29) % 90;
                ps.push_independent(vec![i.into(), pid.into(), price.into()], 0.5, vars);
            }
        }
    }
    {
        let (p, vars) = db.table_and_vars_mut("P")?;
        for pid in 0..60i64 {
            p.push_independent(vec![pid.into(), (pid % 17).into()], 0.7, vars);
        }
    }
    Ok(db)
}

/// The serving workload: shops whose maximal price stays under a bound.
fn workload() -> Query {
    Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(
            Query::table("P").rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
            &[("ps_pid", "p_pid")],
        )
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
        .project(["shop"])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snapshot_path =
        std::env::temp_dir().join(format!("pvc-warm-restart-{}.snap", std::process::id()));
    let options = EvalOptions::default();
    let query = workload();

    // --- process one: serve cold, then warm, then snapshot. -------------------
    let engine = Engine::new(build_database()?);
    let prepared = engine.prepare(&query)?;

    let start = Instant::now();
    let cold = prepared.execute(&options)?;
    let cold_time = start.elapsed();
    println!(
        "cold first query:       {cold_time:>10.2?}  ({} tuples, every d-tree compiled)",
        cold.tuples.len()
    );

    let start = Instant::now();
    prepared.execute(&options)?;
    let warm_live = start.elapsed();
    println!("warm (same process):    {warm_live:>10.2?}  (served from in-process caches)");

    // Also warm a query whose lineage never touches S — it demonstrates the
    // partial-restore path at the end of this example.
    let p_only = Query::table("P").project(["pid"]);
    engine.prepare(&p_only)?.execute(&options)?;

    let start = Instant::now();
    let stats = engine.save_artifacts(&snapshot_path)?;
    println!(
        "save_artifacts:         {:>10.2?}  ({} bytes: {} interned nodes, {} distributions, \
         {} arenas, {} rewrites)",
        start.elapsed(),
        stats.bytes,
        stats.interned,
        stats.distributions,
        stats.arenas,
        stats.rewrites
    );
    drop(engine); // the "process" exits; only the snapshot file survives

    // --- process two: rebuild the database, restore the artifacts. ------------
    let start = Instant::now();
    let restarted = Engine::with_artifacts_from(build_database()?, &snapshot_path)?;
    println!(
        "with_artifacts_from:    {:>10.2?}  (decode + replay)",
        start.elapsed()
    );

    let prepared = restarted.prepare(&query)?;
    let start = Instant::now();
    let warm_disk = prepared.execute(&options)?;
    let warm_disk_time = start.elapsed();
    println!("warm-from-disk query:   {warm_disk_time:>10.2?}  (first query after the restart)");

    // Results are bit-identical to the cold run; nothing was recompiled.
    assert_eq!(cold.tuples.len(), warm_disk.tuples.len());
    for (a, b) in cold.tuples.iter().zip(&warm_disk.tuples) {
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
    let cache = restarted.cache_stats();
    println!(
        "restored CacheStats:    hits {} / misses {} / arena rebuilds {} / rewrites {}",
        cache.hits, cache.misses, cache.arena_misses, cache.rewrites
    );
    assert_eq!(cache.misses, 0, "warm-from-disk must not recompute");
    assert_eq!(cache.arena_misses, 0, "warm-from-disk must not recompile");
    println!(
        "\ncold / warm-from-disk speedup: {:.0}x (bit-identical results)",
        cold_time.as_secs_f64() / warm_disk_time.as_secs_f64().max(1e-9)
    );

    // A database that diverged in one table still restores *partially*: the
    // per-table fingerprint vector pinpoints the divergence, artifacts over
    // the untouched tables stay warm, and only those touching the mutated
    // table's variables are dropped (recomputed on demand — never served
    // stale).
    let mut grown = build_database()?;
    {
        let (s, vars) = grown.table_and_vars_mut("S")?;
        s.push_independent(vec![99i64.into(), "new-shop".into()], 0.5, vars);
    }
    let partial = Engine::with_artifacts_from(grown, &snapshot_path)?;
    let stats = partial.cache_stats();
    println!(
        "partial restore after mutating S: {} confidence artifacts kept warm \
         (the P-only query's), the S-touching rest dropped",
        stats.confidences
    );
    assert!(stats.confidences > 0, "P-only artifacts must survive");

    std::fs::remove_file(&snapshot_path).ok();
    Ok(())
}
