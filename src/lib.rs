//! # pvc-suite
//!
//! Umbrella crate for the reproduction of *"Aggregation in Probabilistic Databases via
//! Knowledge Compilation"* (Fink, Han, Olteanu, VLDB 2012): it re-exports the public
//! API of all member crates so that applications can depend on a single crate.
//!
//! ## The engine flow
//!
//! The public entry point is the **`Engine` / prepared-query API** of [`db`]:
//!
//! ```
//! use pvc_suite::prelude::*;
//!
//! // 1. Build a probabilistic database of tuple-independent tables.
//! let mut db = Database::new();
//! db.create_table("offers", Schema::new(["shop", "price"]));
//! let (offers, vars) = db.table_and_vars_mut("offers")?;
//! offers.push_independent(vec!["M&S".into(), 10i64.into()], 0.9, vars);
//! offers.push_independent(vec!["Gap".into(), 12i64.into()], 0.8, vars);
//!
//! // 2. The engine owns the database plus a cache of compile artifacts.
//! let engine = Engine::new(db);
//!
//! // 3. `prepare` validates once, computes the schema and classifies the query
//! //    against the §6 tractability classes — inspect the result via `Plan`.
//! let query = Query::table("offers").group_agg(
//!     ["shop"],
//!     vec![AggSpec::new(AggOp::Min, "price", "cheapest")],
//! );
//! let prepared = engine.prepare(&query)?;
//! assert!(prepared.plan().strategy.is_tractable());
//!
//! // 4. `execute` runs the ⟦·⟧ rewriting and d-tree compilation; invalid input
//! //    and exceeded budgets surface as `Err(pvc_db::Error)`, never a panic.
//! let result = prepared.execute(&EvalOptions::default())?;
//! assert_eq!(result.tuples.len(), 2);
//! # Ok::<(), pvc_suite::db::Error>(())
//! ```
//!
//! ## Caching & reuse
//!
//! Identical sub-provenance recurs constantly across tuples, executions and queries,
//! so the engine memoises compilation artifacts in a shared, bounded subsystem:
//!
//! * **hash-consed expression arena** ([`expr::intern`]) — every annotation and
//!   aggregate expression is interned into a canonical id with O(1) structural
//!   equality and a 64-bit hash that is stable under commutative operand
//!   reordering, so `x·(y + z)` and `(z + y)·x` share one identity;
//! * **canonical compilation cache** ([`core::cache`]) — distributions and
//!   confidences are memoised under those ids in an LRU store with configurable
//!   entry/byte bounds (`CacheConfig`), and the cache is consulted at every
//!   *independent sub-d-tree*, so recurring components of large annotations are
//!   reused even inside otherwise-new expressions;
//! * **engine integration** — [`db::Engine`] owns one arena + cache pair; repeated
//!   executions and *structurally equal queries under different renderings* hit the
//!   same entries. [`db::CacheStats`] reports entries, bytes, hits, misses,
//!   evictions and cross-query hits; `Engine::with_cache_config` bounds the
//!   artifact payloads (the heavy part — distributions). The arena itself and
//!   the per-query rewrite cache grow with the number of distinct
//!   expressions/queries seen.
//!
//! ## Updates
//!
//! Databases are mutated through the typed **delta API**: `Delta` is a
//! validated, atomic batch of inserts, deletes and variable re-weightings that
//! `Engine::apply_delta` applies with **selective invalidation** — only cached
//! artifacts whose variable set intersects the delta (and step-I rewrites
//! whose base tables were touched) are evicted, so queries over untouched
//! tables keep answering with zero recompilations ([`db::DeltaStats`] counts
//! exactly what was evicted vs. kept). Under serving,
//! `serve::Server::apply_delta` applies a delta to an idle tenant between
//! batches. The old escape hatch `Engine::database_mut` (drop every cache) is
//! deprecated; see `docs/ARCHITECTURE.md` §"Updates and invalidation".
//!
//! For tractable plans the engine also skips compilation entirely where closed
//! forms exist: read-once confidences, and MIN/MAX aggregate distributions over
//! independent terms (Proposition 1 of the paper).
//!
//! ## Member crates
//!
//! * [`algebra`] — monoids, semirings, semimodules (§2.2);
//! * [`prob`] — discrete distributions, convolution (§2.1) and the seeded RNG;
//! * [`expr`] — semiring/semimodule expressions over random variables (Fig. 2);
//! * [`core`] — decomposition trees and the compilation algorithm (§5);
//! * [`db`] — pvc-tables, the query language `Q` with the `⟦·⟧` rewriting (§3–4),
//!   the tractability classes of §6 and the [`db::Engine`] described above;
//! * [`serve`] — the long-lived serving runtime (not in the paper): a
//!   [`serve::Server`] owning one engine per tenant, a persistent worker pool,
//!   admission control, cross-query batch scheduling, idle-time artifact
//!   compaction and background snapshots for warm restarts;
//! * [`workload`] — the synthetic expression generator of the experiments (§7.1);
//! * [`tpch`] — the TPC-H-like data generator and queries Q1/Q2 (§7.2).
//!
//! See `examples/quickstart.rs` for a five-minute tour of the engine flow, and
//! `tests/api_errors.rs` for the error contract of `prepare`/`execute`.

#![forbid(unsafe_code)]

pub use pvc_algebra as algebra;
pub use pvc_core as core;
pub use pvc_core::obs;
pub use pvc_db as db;
pub use pvc_expr as expr;
pub use pvc_prob as prob;
pub use pvc_serve as serve;
pub use pvc_tpch as tpch;
pub use pvc_workload as workload;

/// The most commonly used items, for `use pvc_suite::prelude::*`.
pub mod prelude {
    pub use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind, SemiringValue};
    pub use pvc_core::{
        compile_semimodule, compile_semiring, confidence, semimodule_distribution,
        semiring_distribution, CompileOptions, Compiler, DTree, ExecutionProfile,
    };
    pub use pvc_db::{
        classify, try_evaluate, try_tuple_confidences, AggSpec, CacheConfig, CacheStats, Database,
        Delta, DeltaStats, DeltaTotals, Engine, EngineStats, Error, EvalOptions, PersistError,
        Plan, Predicate, PreparedQuery, ProbTuple, PvcTable, Query, QueryClass, QueryResult,
        Schema, SharedArtifacts, SnapshotStats, SnapshotTotals, Strategy, TupleStream, Value,
    };
    #[allow(deprecated)]
    pub use pvc_db::{evaluate, evaluate_with_probabilities, tuple_confidences};
    pub use pvc_expr::{Interner, SemimoduleExpr, SemiringExpr, Var, VarTable};
    pub use pvc_prob::{Dist, MonoidDist, SemiringDist};
    pub use pvc_serve::{ResultStream, ServeConfig, ServeError, Server, ServerStats, Ticket};
}
