//! # pvc-suite
//!
//! Umbrella crate for the reproduction of *"Aggregation in Probabilistic Databases via
//! Knowledge Compilation"* (Fink, Han, Olteanu, VLDB 2012): it re-exports the public
//! API of all member crates so that applications can depend on a single crate.
//!
//! * [`algebra`] — monoids, semirings, semimodules (§2.2);
//! * [`prob`] — discrete distributions and convolution (§2.1);
//! * [`expr`] — semiring/semimodule expressions over random variables (Fig. 2);
//! * [`core`] — decomposition trees and the compilation algorithm (§5);
//! * [`db`] — pvc-tables and the query language `Q` with the `⟦·⟧` rewriting (§3–4)
//!   plus the tractability classes of §6;
//! * [`workload`] — the synthetic expression generator of the experiments (§7.1);
//! * [`tpch`] — the TPC-H-like data generator and queries Q1/Q2 (§7.2).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use pvc_algebra as algebra;
pub use pvc_core as core;
pub use pvc_db as db;
pub use pvc_expr as expr;
pub use pvc_prob as prob;
pub use pvc_tpch as tpch;
pub use pvc_workload as workload;

/// The most commonly used items, for `use pvc_suite::prelude::*`.
pub mod prelude {
    pub use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind, SemiringValue};
    pub use pvc_core::{
        compile_semimodule, compile_semiring, confidence, semimodule_distribution,
        semiring_distribution, CompileOptions, Compiler, DTree,
    };
    pub use pvc_db::{
        classify, evaluate, evaluate_with_probabilities, tuple_confidences, AggSpec, Database,
        Predicate, ProbTuple, PvcTable, Query, QueryClass, QueryResult, Schema, Value,
    };
    pub use pvc_expr::{SemimoduleExpr, SemiringExpr, Var, VarTable};
    pub use pvc_prob::{Dist, MonoidDist, SemiringDist};
}
